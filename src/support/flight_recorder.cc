#include "support/flight_recorder.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define BALANCE_HAVE_BACKTRACE 1
#endif

namespace balance
{

namespace
{

/** Microseconds since the first call (cheap monotone timestamps). */
std::int64_t
nowUs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               clock::now() - epoch)
        .count();
}

// ---- async-signal-safe formatting helpers ------------------------
//
// The crash path may not call snprintf/malloc/locale machinery, so
// decimal formatting is done by hand into stack buffers and output
// goes straight through write(2). Short writes are retried; errors
// are ignored (there is nothing useful to do with them mid-crash).

void
fdWrite(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        ssize_t n = ::write(fd, data, len);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return;
        }
        data += n;
        len -= std::size_t(n);
    }
}

void
fdStr(int fd, const char *s)
{
    if (s)
        fdWrite(fd, s, std::strlen(s));
}

void
fdDec(int fd, long long v)
{
    char buf[24];
    char *p = buf + sizeof(buf);
    bool neg = v < 0;
    unsigned long long u = neg
        ? ~static_cast<unsigned long long>(v) + 1ULL
        : static_cast<unsigned long long>(v);
    do {
        *--p = char('0' + u % 10);
        u /= 10;
    } while (u != 0);
    if (neg)
        *--p = '-';
    fdWrite(fd, p, std::size_t(buf + sizeof(buf) - p));
}

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV:
        return "SIGSEGV";
      case SIGABRT:
        return "SIGABRT";
      case SIGBUS:
        return "SIGBUS";
      case SIGINT:
        return "SIGINT";
      default:
        return "signal";
    }
}

} // namespace

const char *
flightEventTypeName(FlightEventType type)
{
    switch (type) {
      case FlightEventType::PhaseEnter:
        return "phase_enter";
      case FlightEventType::PhaseLeave:
        return "phase_leave";
      case FlightEventType::Superblock:
        return "superblock";
      case FlightEventType::BnbRound:
        return "bnb_round";
      case FlightEventType::Mark:
        return "mark";
    }
    return "unknown";
}

FlightRecorder::Slot *
FlightRecorder::localSlot()
{
    // One slot per (recorder, thread). The global recorder is the
    // only long-lived instance, so a plain thread_local cache keyed
    // on the instance pointer suffices.
    thread_local FlightRecorder *cachedOwner = nullptr;
    thread_local Slot *cachedSlot = nullptr;
    if (cachedOwner == this && cachedSlot)
        return cachedSlot;
    for (int i = 0; i < maxThreads; ++i) {
        bool expected = false;
        if (slots[i].claimed.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
            slotsUsed.fetch_add(1, std::memory_order_relaxed);
            cachedOwner = this;
            cachedSlot = &slots[i];
            return cachedSlot;
        }
    }
    // Slot table full: drop this thread's events (bounded by design).
    return nullptr;
}

void
FlightRecorder::record(FlightEventType type, const char *label,
                       std::int64_t a, std::int64_t b)
{
    if (!enabled())
        return;
    Slot *slot = localSlot();
    if (!slot)
        return;
    std::uint64_t n = slot->next.load(std::memory_order_relaxed);
    FlightEvent &e = slot->ring[n % ringCapacity];
    e.tsUs = nowUs();
    e.label = label;
    e.a = a;
    e.b = b;
    e.type = type;
    // Release so a dump that observes the bumped index also observes
    // the event fields written above.
    slot->next.store(n + 1, std::memory_order_release);
}

void
FlightRecorder::setThreadPhase(const char *phase)
{
    if (!enabled())
        return;
    if (Slot *slot = localSlot())
        slot->phase.store(phase, std::memory_order_release);
}

const char *
FlightRecorder::threadPhase()
{
    Slot *slot = localSlot();
    return slot ? slot->phase.load(std::memory_order_acquire)
                : nullptr;
}

void
FlightRecorder::dumpTo(int fd) const
{
    fdStr(fd, "flight recorder (newest events first; timestamps in "
              "us since start)\n");
    int lane = 0;
    for (int i = 0; i < maxThreads; ++i) {
        const Slot &slot = slots[i];
        if (!slot.claimed.load(std::memory_order_acquire))
            continue;
        std::uint64_t n = slot.next.load(std::memory_order_acquire);
        const char *phase = slot.phase.load(std::memory_order_acquire);
        fdStr(fd, "thread ");
        fdDec(fd, lane++);
        fdStr(fd, " active phase: ");
        fdStr(fd, phase ? phase : "(none)");
        fdStr(fd, " events: ");
        fdDec(fd, (long long)(n));
        fdStr(fd, "\n");
        std::uint64_t count = n < std::uint64_t(ringCapacity)
            ? n
            : std::uint64_t(ringCapacity);
        std::uint64_t toPrint =
            count < std::uint64_t(dumpEventsPerThread)
            ? count
            : std::uint64_t(dumpEventsPerThread);
        for (std::uint64_t k = 0; k < toPrint; ++k) {
            // Newest first: event n-1-k lives at (n-1-k) % capacity.
            const FlightEvent &e =
                slot.ring[(n - 1 - k) % ringCapacity];
            fdStr(fd, "  -");
            fdDec(fd, (long long)(k + 1));
            fdStr(fd, " ");
            fdStr(fd, flightEventTypeName(e.type));
            fdStr(fd, " ");
            fdStr(fd, e.label ? e.label : "-");
            fdStr(fd, " a=");
            fdDec(fd, e.a);
            fdStr(fd, " b=");
            fdDec(fd, e.b);
            fdStr(fd, " t=");
            fdDec(fd, e.tsUs);
            fdStr(fd, "us\n");
        }
    }
}

std::vector<FlightEvent>
FlightRecorder::snapshot() const
{
    std::vector<FlightEvent> out;
    for (int i = 0; i < maxThreads; ++i) {
        const Slot &slot = slots[i];
        if (!slot.claimed.load(std::memory_order_acquire))
            continue;
        std::uint64_t n = slot.next.load(std::memory_order_acquire);
        std::uint64_t count = n < std::uint64_t(ringCapacity)
            ? n
            : std::uint64_t(ringCapacity);
        for (std::uint64_t k = 0; k < count; ++k)
            out.push_back(slot.ring[(n - count + k) % ringCapacity]);
    }
    return out;
}

void
FlightRecorder::clear()
{
    for (int i = 0; i < maxThreads; ++i) {
        Slot &slot = slots[i];
        if (!slot.claimed.load(std::memory_order_acquire))
            continue;
        slot.next.store(0, std::memory_order_release);
        slot.phase.store(nullptr, std::memory_order_release);
    }
}

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder *recorder = new FlightRecorder();
    return *recorder;
}

FlightScope::FlightScope(const char *phase, std::int64_t arg)
{
    FlightRecorder &rec = FlightRecorder::global();
    if (!rec.enabled())
        return;
    scopePhase = phase;
    previous = rec.threadPhase();
    rec.record(FlightEventType::PhaseEnter, phase, arg);
    rec.setThreadPhase(phase);
}

FlightScope::~FlightScope()
{
    if (!scopePhase)
        return;
    FlightRecorder &rec = FlightRecorder::global();
    rec.record(FlightEventType::PhaseLeave, scopePhase);
    rec.setThreadPhase(previous);
}

namespace
{

std::atomic<bool> handlersInstalled{false};
std::atomic<int> crashDepth{0};

/**
 * The fatal-signal handler. Installed with SA_RESETHAND, so the
 * default disposition is already restored when this runs; after the
 * dump the signal is re-raised and the process dies exactly as it
 * would have without the handler (core dump, exit status).
 */
void
crashHandler(int sig)
{
    // A crash inside the dump re-raises straight through (the
    // default handler is back); this guard stops a second thread
    // faulting concurrently from interleaving a second dump.
    if (crashDepth.fetch_add(1, std::memory_order_relaxed) == 0) {
        char path[64];
        char *p = path;
        const char *prefix = "crash-";
        while (*prefix)
            *p++ = *prefix++;
        long long pid = (long long)(::getpid());
        char digits[24];
        int nd = 0;
        do {
            digits[nd++] = char('0' + pid % 10);
            pid /= 10;
        } while (pid != 0);
        while (nd > 0)
            *p++ = digits[--nd];
        const char *suffix = ".txt";
        while (*suffix)
            *p++ = *suffix++;
        *p = '\0';

        int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            fdStr(fd, "fatal signal ");
            fdDec(fd, sig);
            fdStr(fd, " (");
            fdStr(fd, signalName(sig));
            fdStr(fd, ") pid ");
            fdDec(fd, (long long)(::getpid()));
            fdStr(fd, "\n\n");
#ifdef BALANCE_HAVE_BACKTRACE
            fdStr(fd, "backtrace:\n");
            void *frames[64];
            int depth = ::backtrace(frames, 64);
            ::backtrace_symbols_fd(frames, depth, fd);
            fdStr(fd, "\n");
#endif
            FlightRecorder::global().dumpTo(fd);
            ::close(fd);

            fdStr(2, "wrote ");
            fdStr(2, path);
            fdStr(2, "\n");
        }
    }
    ::raise(sig);
}

} // namespace

void
installCrashHandlers()
{
    if (handlersInstalled.exchange(true, std::memory_order_acq_rel))
        return;
    FlightRecorder::global().enable();
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashHandler;
    sigemptyset(&sa.sa_mask);
    // SA_RESETHAND: the default disposition is restored before the
    // handler runs, so the re-raise terminates for real. SA_NODEFER
    // lets a fault inside the handler die immediately too.
    sa.sa_flags = SA_RESETHAND | SA_NODEFER;
    ::sigaction(SIGSEGV, &sa, nullptr);
    ::sigaction(SIGABRT, &sa, nullptr);
    ::sigaction(SIGBUS, &sa, nullptr);
}

bool
crashHandlersInstalled()
{
    return handlersInstalled.load(std::memory_order_acquire);
}

} // namespace balance
