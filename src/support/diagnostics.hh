/**
 * @file
 * Error-reporting primitives for the balance scheduling library.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (library bugs) and aborts; fatal() is for user errors
 * (bad input, malformed superblock files) and exits cleanly with a
 * non-zero status. bsAssert() is a checked-in-all-builds assertion
 * that routes through panic().
 */

#ifndef BALANCE_SUPPORT_DIAGNOSTICS_HH
#define BALANCE_SUPPORT_DIAGNOSTICS_HH

#include <sstream>
#include <string>

namespace balance
{

/**
 * Abort with an internal-error message. Use for conditions that
 * indicate a bug in this library regardless of user input.
 *
 * @param file Source file of the failure site.
 * @param line Source line of the failure site.
 * @param msg Human-readable description of the violated invariant.
 */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Exit with a user-error message. Use when the simulation cannot
 * continue because of bad user input (invalid machine description,
 * malformed .sb file, inconsistent probabilities).
 *
 * @param msg Human-readable description of the user error.
 */
[[noreturn]] void fatalImpl(const std::string &msg);

/**
 * Print a non-fatal warning to stderr.
 *
 * @param msg Human-readable description of the suspicious condition.
 */
void warn(const std::string &msg);

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace balance

/** Abort with a formatted internal-error message. */
#define bsPanic(...) \
    ::balance::panicImpl(__FILE__, __LINE__, \
                         ::balance::detail::concat(__VA_ARGS__))

/** Exit with a formatted user-error message. */
#define bsFatal(...) \
    ::balance::fatalImpl(::balance::detail::concat(__VA_ARGS__))

/**
 * Always-on assertion; failure is an internal library bug.
 * Active in release builds as well: the algorithms here are cheap
 * relative to the invariant checks and silent corruption of a bound
 * would invalidate every experiment built on top of it.
 */
#define bsAssert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::balance::panicImpl(__FILE__, __LINE__, \
                ::balance::detail::concat("assertion failed: " #cond " ", \
                                          ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // BALANCE_SUPPORT_DIAGNOSTICS_HH
