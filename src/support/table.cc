#include "support/table.hh"

#include <algorithm>
#include <sstream>

namespace balance
{

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

void
TextTable::addRule()
{
    rows.emplace_back();
}

std::string
TextTable::render() const
{
    // Determine column count and widths across header and body.
    std::size_t cols = header.size();
    for (const auto &r : rows)
        cols = std::max(cols, r.size());

    std::vector<std::size_t> width(cols, 0);
    auto account = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    account(header);
    for (const auto &r : rows)
        account(r);

    auto renderRow = [&](const std::vector<std::string> &r,
                         std::ostringstream &oss) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string &cell = i < r.size() ? r[i] : std::string();
            oss << cell;
            if (i + 1 < cols)
                oss << std::string(width[i] - cell.size() + 2, ' ');
        }
        oss << '\n';
    };

    std::size_t totalWidth = 0;
    for (std::size_t i = 0; i < cols; ++i)
        totalWidth += width[i] + (i + 1 < cols ? 2 : 0);

    std::ostringstream oss;
    if (!header.empty()) {
        renderRow(header, oss);
        oss << std::string(totalWidth, '-') << '\n';
    }
    for (const auto &r : rows) {
        if (r.empty())
            oss << std::string(totalWidth, '-') << '\n';
        else
            renderRow(r, oss);
    }
    return oss.str();
}

std::string
fmtDouble(double v, int digits)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(digits);
    oss << v;
    return oss.str();
}

std::string
fmtPercent(double v, int digits)
{
    return fmtDouble(v, digits) + "%";
}

std::string
fmtCount(long long v)
{
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int since = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since == 3) {
            out.push_back(',');
            since = 0;
        }
        out.push_back(*it);
        ++since;
    }
    if (v < 0)
        out.push_back('-');
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
sparkline(const std::vector<long long> &values)
{
    // The eight block elements, lowest to full (UTF-8 encoded).
    static const char *blocks[8] = {
        "▁", "▂", "▃", "▄",
        "▅", "▆", "▇", "█"};
    long long peak = 0;
    for (long long v : values)
        peak = std::max(peak, v);
    std::string out;
    for (long long v : values) {
        int level = 0;
        if (peak > 0 && v > 0) {
            // Scale into 1..7 so any nonzero count is visible
            // against a zero bucket.
            level = 1 + int((v * 7 - 1) / peak);
            level = std::min(level, 7);
        }
        out += blocks[level];
    }
    return out;
}

} // namespace balance
