/**
 * @file
 * Operation classes and default latencies for the paper's machine
 * models (Section 6): integer ALU, memory, floating point, and branch
 * operations, all fully pipelined.
 */

#ifndef BALANCE_MACHINE_OP_CLASS_HH
#define BALANCE_MACHINE_OP_CLASS_HH

#include <cstdint>
#include <string>

namespace balance
{

/**
 * Functional classes of operations. FS machines bind each class to a
 * dedicated unit pool; GP machines fold every class into one pool.
 */
enum class OpClass : std::uint8_t
{
    IntAlu,   //!< integer arithmetic/logic, unit latency
    Memory,   //!< loads/stores; loads have 2-cycle latency
    FloatAlu, //!< float add/mul/div; 1/3/9-cycle latencies
    Branch,   //!< superblock exits, unit latency
};

/** Number of distinct OpClass values. */
constexpr int numOpClasses = 4;

/** Short mnemonic ("int", "mem", "flt", "br"). */
std::string opClassName(OpClass cls);

/**
 * Parse an OpClass mnemonic as produced by opClassName().
 *
 * @param name Mnemonic to parse.
 * @param out Receives the class on success.
 * @return false when @p name is not a known mnemonic.
 */
bool parseOpClass(const std::string &name, OpClass &out);

/**
 * Result latencies from Section 6: all operations are unit latency
 * except loads (2), float multiply (3) and float divide (9). The
 * workload generator picks concrete latencies per operation; these
 * constants centralize the paper's values.
 */
struct Latencies
{
    static constexpr int unit = 1;
    static constexpr int load = 2;
    static constexpr int floatMultiply = 3;
    static constexpr int floatDivide = 9;
    /** Branch latency l_br used in completion times and control edges. */
    static constexpr int branch = 1;
};

} // namespace balance

#endif // BALANCE_MACHINE_OP_CLASS_HH
