#include "machine/resource_state.hh"

#include "support/diagnostics.hh"

namespace balance
{

ResourceState::ResourceState(const MachineModel &machine)
    : model(&machine)
{
}

void
ResourceState::clear()
{
    usage.clear();
    cycles = 0;
}

void
ResourceState::ensureCycle(int cycle) const
{
    bsAssert(cycle >= 0, "negative cycle ", cycle);
    if (cycle < cycles)
        return;
    int newCycles = std::max(cycle + 1, cycles * 2 + 8);
    usage.resize(std::size_t(newCycles) * model->numResources(), 0);
    cycles = newCycles;
}

int
ResourceState::freePoolSlots(int cycle, ResourceId r) const
{
    bsAssert(cycle >= 0, "negative cycle ", cycle);
    if (cycle >= cycles)
        return model->width(r);
    int used = usage[std::size_t(cycle) * model->numResources() +
                     std::size_t(r)];
    return model->width(r) - used;
}

int
ResourceState::freeSlots(int cycle, OpClass cls) const
{
    return freePoolSlots(cycle, model->poolOf(cls));
}

bool
ResourceState::hasSlot(int cycle, OpClass cls) const
{
    return freeSlots(cycle, cls) > 0;
}

void
ResourceState::reserve(int cycle, OpClass cls)
{
    ensureCycle(cycle);
    ResourceId r = model->poolOf(cls);
    int &used = usage[std::size_t(cycle) * model->numResources() +
                      std::size_t(r)];
    bsAssert(used < model->width(r), "pool ", r, " overfull in cycle ",
             cycle);
    ++used;
}

void
ResourceState::release(int cycle, OpClass cls)
{
    bsAssert(cycle >= 0 && cycle < cycles, "release of unknown cycle ",
             cycle);
    ResourceId r = model->poolOf(cls);
    int &used = usage[std::size_t(cycle) * model->numResources() +
                      std::size_t(r)];
    bsAssert(used > 0, "release with no reservation in cycle ", cycle);
    --used;
}

int
ResourceState::earliestFree(int from, OpClass cls) const
{
    bsAssert(from >= 0, "negative cycle ", from);
    int cycle = from;
    while (cycle < cycles && !hasSlot(cycle, cls))
        ++cycle;
    return cycle;
}

int
ResourceState::availableInWindow(int fromCycle, int toCycle,
                                 ResourceId r) const
{
    if (toCycle < fromCycle)
        return 0;
    long long total = 0;
    for (int c = fromCycle; c <= toCycle; ++c)
        total += freePoolSlots(c, r);
    return int(total);
}

int
ResourceState::usedInCycle(int cycle) const
{
    bsAssert(cycle >= 0, "negative cycle ", cycle);
    if (cycle >= cycles)
        return 0;
    int used = 0;
    for (int r = 0; r < model->numResources(); ++r)
        used += usage[std::size_t(cycle) * model->numResources() +
                      std::size_t(r)];
    return used;
}

} // namespace balance
