/**
 * @file
 * Declarative VLIW machine description: named resource pools with
 * per-cycle issue widths and a mapping from operation class to pool.
 *
 * The paper's six configurations (Section 6):
 *  - GP1/GP2/GP4: 1/2/4 general-purpose units (all classes share one
 *    pool);
 *  - FS4 = (1 int, 1 mem, 1 flt, 1 br), FS6 = (2,2,1,1),
 *    FS8 = (3,2,2,1): fully specialized pools.
 * All units are fully pipelined: an operation occupies its unit only
 * in its issue cycle.
 */

#ifndef BALANCE_MACHINE_MACHINE_MODEL_HH
#define BALANCE_MACHINE_MACHINE_MODEL_HH

#include <array>
#include <string>
#include <vector>

#include "machine/op_class.hh"

namespace balance
{

/** Index of a resource pool within a MachineModel. */
using ResourceId = int;

/**
 * Immutable machine description. Construct via the named factory
 * functions or custom() and treat as a value.
 */
class MachineModel
{
  public:
    /**
     * Build a general-purpose machine: one pool serving all classes.
     *
     * @param name Display name (e.g. "GP2").
     * @param width Per-cycle issue width of the single pool.
     */
    static MachineModel generalPurpose(std::string name, int width);

    /**
     * Build a fully specialized machine with one pool per class.
     *
     * @param name Display name (e.g. "FS6").
     * @param intUnits Integer-ALU pool width.
     * @param memUnits Memory pool width.
     * @param floatUnits Float pool width.
     * @param branchUnits Branch pool width.
     */
    static MachineModel fullySpecialized(std::string name, int intUnits,
                                         int memUnits, int floatUnits,
                                         int branchUnits);

    /**
     * Build an arbitrary machine.
     *
     * @param name Display name.
     * @param poolWidths Issue width of each pool; all must be >= 1.
     * @param classToPool Pool index for each OpClass, indexed by the
     *        underlying value of the class.
     */
    static MachineModel custom(std::string name,
                               std::vector<int> poolWidths,
                               std::array<ResourceId, numOpClasses>
                                   classToPool);

    /** GP1 configuration from the paper. */
    static MachineModel gp1();
    /** GP2 configuration from the paper. */
    static MachineModel gp2();
    /** GP4 configuration from the paper. */
    static MachineModel gp4();
    /** FS4 = (1,1,1,1) configuration from the paper. */
    static MachineModel fs4();
    /** FS6 = (2,2,1,1) configuration from the paper. */
    static MachineModel fs6();
    /** FS8 = (3,2,2,1) configuration from the paper. */
    static MachineModel fs8();

    /** All six paper configurations in the paper's order. */
    static std::vector<MachineModel> paperConfigs();

    /**
     * Look up one of the six paper configurations by name
     * (case-sensitive, e.g. "FS4"); fatal on unknown name.
     */
    static MachineModel byName(const std::string &name);

    /** @return the display name. */
    const std::string &name() const { return modelName; }

    /** @return the number of resource pools. */
    int numResources() const { return int(widths.size()); }

    /** @return the issue width of pool @p r. */
    int
    width(ResourceId r) const
    {
        return widths[std::size_t(r)];
    }

    /** @return the pool serving operations of class @p cls. */
    ResourceId
    poolOf(OpClass cls) const
    {
        return pools[std::size_t(cls)];
    }

    /** @return the issue width of the pool serving class @p cls. */
    int
    widthOf(OpClass cls) const
    {
        return width(poolOf(cls));
    }

    /** @return the sum of all pool widths (total issue width). */
    int totalWidth() const;

    /** One-line human-readable summary. */
    std::string describe() const;

  private:
    MachineModel() = default;

    std::string modelName;
    std::vector<int> widths;
    std::array<ResourceId, numOpClasses> pools{};
};

} // namespace balance

#endif // BALANCE_MACHINE_MACHINE_MODEL_HH
