/**
 * @file
 * Per-cycle functional-unit reservation table. Used both by the list
 * schedulers (forward, cycle by cycle) and by the Rim & Jain greedy
 * relaxation (random access by cycle).
 *
 * All machines in this library are fully pipelined, so an operation
 * occupies one unit of its pool for exactly its issue cycle; the
 * paper handles non-pipelined units by expanding them into chains of
 * pipelined pseudo-operations before scheduling (Rim & Jain), which
 * the workload layer supports at graph-construction time.
 */

#ifndef BALANCE_MACHINE_RESOURCE_STATE_HH
#define BALANCE_MACHINE_RESOURCE_STATE_HH

#include <vector>

#include "machine/machine_model.hh"

namespace balance
{

/**
 * Mutable reservation table: usage[cycle][pool] counters that grow on
 * demand. Cheap to reset and copy for the sizes involved here
 * (hundreds of cycles, <= 4 pools).
 */
class ResourceState
{
  public:
    /** Create an empty table for @p machine. */
    explicit ResourceState(const MachineModel &machine);

    /** The table keeps a pointer: temporaries are a bug. */
    explicit ResourceState(MachineModel &&) = delete;

    /** @return the machine this table was built for. */
    const MachineModel &machine() const { return *model; }

    /** Forget all reservations. */
    void clear();

    /**
     * Point the table at @p machine and clear it, keeping the
     * allocated capacity. Lets long-lived scratch state reuse one
     * table across runs and machines.
     */
    void
    rebind(const MachineModel &machine)
    {
        model = &machine;
        clear();
    }

    /** @return units of class @p cls still free in @p cycle. */
    int freeSlots(int cycle, OpClass cls) const;

    /** @return units of pool @p r still free in @p cycle. */
    int freePoolSlots(int cycle, ResourceId r) const;

    /** @return true when class @p cls has a free unit in @p cycle. */
    bool hasSlot(int cycle, OpClass cls) const;

    /**
     * Reserve one unit of class @p cls in @p cycle.
     * Panics when the pool is already full: callers must check first.
     */
    void reserve(int cycle, OpClass cls);

    /** Release one unit of class @p cls in @p cycle. */
    void release(int cycle, OpClass cls);

    /**
     * @return the earliest cycle >= @p from with a free unit of
     *         class @p cls. Always terminates: every cycle past the
     *         table end is free.
     */
    int earliestFree(int from, OpClass cls) const;

    /**
     * Total slots of pool @p r in the half-open cycle range
     * [@p fromCycle, @p toCycle], minus reservations already made.
     * Used for ERC available-slot computations (Section 5.1).
     */
    int availableInWindow(int fromCycle, int toCycle, ResourceId r) const;

    /** @return the number of reserved slots in @p cycle over all pools. */
    int usedInCycle(int cycle) const;

  private:
    /** Grow the table so @p cycle is addressable. */
    void ensureCycle(int cycle) const;

    const MachineModel *model;
    /** usage[cycle * numResources + pool] = reserved units. */
    mutable std::vector<int> usage;
    mutable int cycles = 0;
};

} // namespace balance

#endif // BALANCE_MACHINE_RESOURCE_STATE_HH
