#include "machine/machine_model.hh"

#include <numeric>
#include <sstream>

#include "support/diagnostics.hh"

namespace balance
{

MachineModel
MachineModel::generalPurpose(std::string name, int width)
{
    bsAssert(width >= 1, "GP machine needs width >= 1, got ", width);
    MachineModel m;
    m.modelName = std::move(name);
    m.widths = {width};
    m.pools = {0, 0, 0, 0};
    return m;
}

MachineModel
MachineModel::fullySpecialized(std::string name, int intUnits, int memUnits,
                               int floatUnits, int branchUnits)
{
    bsAssert(intUnits >= 1 && memUnits >= 1 && floatUnits >= 1 &&
                 branchUnits >= 1,
             "FS machine needs at least one unit per class");
    MachineModel m;
    m.modelName = std::move(name);
    m.widths = {intUnits, memUnits, floatUnits, branchUnits};
    m.pools = {0, 1, 2, 3};
    return m;
}

MachineModel
MachineModel::custom(std::string name, std::vector<int> poolWidths,
                     std::array<ResourceId, numOpClasses> classToPool)
{
    bsAssert(!poolWidths.empty(), "custom machine needs a pool");
    for (int w : poolWidths)
        bsAssert(w >= 1, "pool width must be >= 1, got ", w);
    for (ResourceId r : classToPool) {
        bsAssert(r >= 0 && r < int(poolWidths.size()),
                 "class mapped to unknown pool ", r);
    }
    MachineModel m;
    m.modelName = std::move(name);
    m.widths = std::move(poolWidths);
    m.pools = classToPool;
    return m;
}

MachineModel
MachineModel::gp1()
{
    return generalPurpose("GP1", 1);
}

MachineModel
MachineModel::gp2()
{
    return generalPurpose("GP2", 2);
}

MachineModel
MachineModel::gp4()
{
    return generalPurpose("GP4", 4);
}

MachineModel
MachineModel::fs4()
{
    return fullySpecialized("FS4", 1, 1, 1, 1);
}

MachineModel
MachineModel::fs6()
{
    return fullySpecialized("FS6", 2, 2, 1, 1);
}

MachineModel
MachineModel::fs8()
{
    return fullySpecialized("FS8", 3, 2, 2, 1);
}

std::vector<MachineModel>
MachineModel::paperConfigs()
{
    return {gp1(), gp2(), gp4(), fs4(), fs6(), fs8()};
}

MachineModel
MachineModel::byName(const std::string &name)
{
    for (auto &m : paperConfigs()) {
        if (m.name() == name)
            return m;
    }
    bsFatal("unknown machine configuration '", name,
            "' (expected one of GP1, GP2, GP4, FS4, FS6, FS8)");
}

int
MachineModel::totalWidth() const
{
    return std::accumulate(widths.begin(), widths.end(), 0);
}

std::string
MachineModel::describe() const
{
    std::ostringstream oss;
    oss << modelName << " (";
    if (numResources() == 1) {
        oss << widths[0] << " general-purpose units";
    } else {
        for (int cls = 0; cls < numOpClasses; ++cls) {
            if (cls)
                oss << ", ";
            oss << widthOf(OpClass(cls)) << " " << opClassName(OpClass(cls));
        }
    }
    oss << ", fully pipelined)";
    return oss.str();
}

} // namespace balance
