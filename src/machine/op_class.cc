#include "machine/op_class.hh"

#include "support/diagnostics.hh"

namespace balance
{

std::string
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
        return "int";
      case OpClass::Memory:
        return "mem";
      case OpClass::FloatAlu:
        return "flt";
      case OpClass::Branch:
        return "br";
    }
    bsPanic("unknown OpClass value ", int(cls));
}

bool
parseOpClass(const std::string &name, OpClass &out)
{
    if (name == "int") {
        out = OpClass::IntAlu;
    } else if (name == "mem") {
        out = OpClass::Memory;
    } else if (name == "flt") {
        out = OpClass::FloatAlu;
    } else if (name == "br") {
        out = OpClass::Branch;
    } else {
        return false;
    }
    return true;
}

} // namespace balance
