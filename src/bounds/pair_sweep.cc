#include "bounds/pair_sweep.hh"

#include <algorithm>

#include "support/diagnostics.hh"
#include "support/simd_kernels.hh"

namespace balance
{

namespace detail
{

void
SinkSkeleton::build(const GraphContext &ctx,
                    const std::vector<int> &earlyRC,
                    const std::vector<int> &lateRC, int branchIdx)
{
    const Superblock &sb = ctx.sb();
    const std::vector<OpId> &members = ctx.closureOps(branchIdx);
    const std::vector<int> &height = ctx.heightToBranch(branchIdx);

    sink = sb.branches()[std::size_t(branchIdx)];
    sinkEarly = earlyRC[std::size_t(sink)];
    n = int(members.size());
    ops = members.data();

    cls.resize(std::size_t(n));
    early.resize(std::size_t(n));
    hSink.resize(std::size_t(n));
    relLate.resize(std::size_t(n));
    for (int m = 0; m < n; ++m) {
        OpId x = members[std::size_t(m)];
        cls[std::size_t(m)] = sb.op(x).cls;
        early[std::size_t(m)] = earlyRC[std::size_t(x)];
        hSink[std::size_t(m)] = height[std::size_t(x)];
        int lrc = lateRC[std::size_t(x)];
        relLate[std::size_t(m)] =
            lrc == lateUnconstrained ? lateUnconstrained : lrc - sinkEarly;
    }

    // Members are in ascending op order, so a stable sort by EarlyRC
    // leaves ties in op order: the permutation realizes the
    // (early, op) tail of the canonical (late, early, op) key.
    orderByEarly.resize(std::size_t(n));
    for (int m = 0; m < n; ++m)
        orderByEarly[std::size_t(m)] = m;
    std::stable_sort(orderByEarly.begin(), orderByEarly.end(),
                     [this](int a, int b) {
                         return early[std::size_t(a)] <
                                early[std::size_t(b)];
                     });
}

int
SinkSkeleton::relax(const MachineModel &machine, BoundScratch &scratch,
                    int cp, int minKey, int maxKey,
                    BoundCounters *counters) const
{
    const std::vector<int> &keys = scratch.keys;
    std::vector<std::int32_t> &perm = scratch.perm;
    perm.resize(std::size_t(n));

    long long range = (long long)(maxKey) - minKey;
    if (range <= 4LL * n + 64) {
        // Stable bucket pass: counts by late key, then scatter in
        // the precomputed (early, op) order. Stability makes this a
        // counting sort by (late, early, op) — the unique greedy
        // order, identical to what std::sort would produce. Only the
        // 4-byte member indices move; the greedy reads the member
        // data straight from the skeleton's SoA arrays.
        std::vector<int> &start = scratch.counts;
        start.assign(std::size_t(range) + 1, 0);
        for (int m = 0; m < n; ++m)
            ++start[std::size_t(keys[std::size_t(m)] - minKey)];
        int run = 0;
        for (int &s : start) {
            int c = s;
            s = run;
            run += c;
        }
        for (int m : orderByEarly) {
            int key = keys[std::size_t(m)] - minKey;
            perm[std::size_t(start[std::size_t(key)]++)] =
                std::int32_t(m);
        }
    } else {
        // Degenerate late spread: fall back to a comparison sort
        // (same unique order, just not worth the bucket memory).
        // Members are in ascending op order, so the index tail m
        // realizes the op tie-break.
        for (int m = 0; m < n; ++m)
            perm[std::size_t(m)] = std::int32_t(m);
        std::sort(perm.begin(), perm.end(),
                  [&](std::int32_t a, std::int32_t b) {
                      if (keys[std::size_t(a)] != keys[std::size_t(b)])
                          return keys[std::size_t(a)] <
                                 keys[std::size_t(b)];
                      if (early[std::size_t(a)] !=
                          early[std::size_t(b)])
                          return early[std::size_t(a)] <
                                 early[std::size_t(b)];
                      return a < b;
                  });
    }

    return rjMaxTardinessPermuted(machine, perm, cls.data(),
                                  early.data(), keys.data(), cp,
                                  scratch.table, counters);
}

} // namespace detail

PairSweepCache::PairSweepCache(
    const GraphContext &ctx, const MachineModel &machine,
    const std::vector<int> &earlyRC,
    const std::vector<std::vector<int>> &lateRCPerBranch,
    BoundScratch &scratch)
    : ctx(ctx), machine(machine), earlyRC(earlyRC),
      lateRCPerBranch(lateRCPerBranch), scratch(scratch),
      perBranch(std::size_t(ctx.sb().numBranches()))
{
    bsAssert(int(lateRCPerBranch.size()) == ctx.sb().numBranches(),
             "need one LateRC vector per branch");
}

const detail::SinkSkeleton &
PairSweepCache::skeletonFor(int branchIdx)
{
    std::unique_ptr<detail::SinkSkeleton> &slot =
        perBranch[std::size_t(branchIdx)];
    if (!slot) {
        ++scratch.stats.pairSkeletonMisses;
        slot = std::make_unique<detail::SinkSkeleton>();
        slot->build(ctx, earlyRC,
                    lateRCPerBranch[std::size_t(branchIdx)], branchIdx);
    } else {
        ++scratch.stats.pairSkeletonHits;
    }
    return *slot;
}

void
PairSweepCache::bindSink(int bj)
{
    bsAssert(bj >= 0 && bj < ctx.sb().numBranches(), "bad sink branch ",
             bj);
    sk = &skeletonFor(bj);
    ejVal = sk->sinkEarly;
    lMaxVal = ejVal + 1;
    scratch.arena.reset();
    hiBuf = scratch.arena.alloc<int>(std::size_t(sk->n));
}

void
PairSweepCache::bindPair(int bi)
{
    bsAssert(sk, "bindSink first");
    const Superblock &sb = ctx.sb();
    OpId i = sb.branches()[std::size_t(bi)];
    eiVal = earlyRC[std::size_t(i)];
    lMinVal = sb.op(i).latency;
    const std::vector<int> &heightI = ctx.heightToBranch(bi);
    for (int m = 0; m < sk->n; ++m)
        hiBuf[std::size_t(m)] = heightI[std::size_t(sk->ops[m])];
}

PairPoint
PairSweepCache::eval(int latency, BoundCounters *counters)
{
    std::vector<int> &keys = scratch.keys;
    keys.resize(std::size_t(sk->n));

    // Composed critical path: any path through the new i -> j edge
    // reaches i first, so H[x] = max(height_j[x], height_i[x] + l).
    // The kernel runs the composition over the skeleton's SoA arrays
    // eight members per vector step; the min/max/cp reductions are
    // associative, so results match the scalar pass exactly. One tick
    // per member as before — the trip count is the member count, so
    // one bulk tick reconstructs it. The relative late key
    // min(-H, relLate) is cp-independent, so the same pass computes
    // the bucket range (0 included, matching the naive init of
    // min/max late to cp).
    ComposeResult r = simdKernels().pairCompose(
        sk->hSink.data(), hiBuf.data(), sk->early.data(),
        sk->relLate.data(), keys.data(), sk->n, latency, ejVal);
    tick(counters, sk->n);

    int tard = sk->relax(machine, scratch, r.cp, r.minKey, r.maxKey,
                         counters);
    int cp = r.cp;

    PairPoint pt;
    pt.y = composeBound(cp, tard);
    // Clamping x up to EarlyRC[i] is required for the sweep's
    // early-termination coverage argument (see DESIGN.md).
    pt.x = std::max(pt.y - latency, eiVal);
    return pt;
}

PairPoint
computePairBound(PairSweepCache &cache, int bi, double wi, double wj,
                 const PairwiseOptions &opts, BoundCounters *counters)
{
    cache.bindPair(bi);
    int ei = cache.ei();
    int ej = cache.ej();
    int lMin = cache.lMin();
    int lMax = cache.lMax();

    std::vector<PairPoint> &recorded = cache.recorded;
    recorded.clear();
    auto eval = [&](int l) {
        PairPoint pt = cache.eval(l, counters);
        recorded.push_back(pt);
        return pt;
    };

    int l0 = std::clamp(ej - ei, lMin, lMax);
    PairPoint first = eval(l0);

    if (first.x == ei && first.y == ej) {
        // Both branches achieve their individual bounds at once:
        // there is no tradeoff and no better pair exists.
        return first;
    }

    // Walk down until j reaches its individual bound.
    if (first.y != ej) {
        int steps = 0;
        bool reached = false;
        for (int l = l0 - 1; l >= lMin; --l) {
            if (++steps > opts.maxSweepSteps)
                break;
            PairPoint pt = eval(l);
            if (pt.y == ej) {
                reached = true;
                break;
            }
        }
        if (!reached && l0 - 1 >= lMin && steps > opts.maxSweepSteps) {
            // Truncated sweep: separations below the last evaluated
            // point are no longer covered by the termination
            // argument; fall back to the always-valid naive point.
            recorded.push_back({ei, ej});
        }
    }

    // Walk up until i reaches its individual bound.
    {
        int steps = 0;
        bool reached = first.x == ei;
        if (!reached) {
            for (int l = l0 + 1; l <= lMax; ++l) {
                if (++steps > opts.maxSweepSteps)
                    break;
                PairPoint pt = eval(l);
                if (pt.x == ei) {
                    reached = true;
                    break;
                }
            }
        }
        if (!reached) {
            // Separations above the last evaluated point: any such
            // schedule has x' >= EarlyRC[i] and y' >= x' + l >
            // EarlyRC[i] + lMax, so this safety pair is dominated.
            recorded.push_back({ei, std::max(ej, ei + lMax)});
        }
    }

    PairPoint best = recorded.front();
    double bestCost = wi * best.x + wj * best.y;
    for (const PairPoint &pt : recorded) {
        double cost = wi * pt.x + wj * pt.y;
        if (cost < bestCost) {
            bestCost = cost;
            best = pt;
        }
    }
    return best;
}

TripleSweepCache::TripleSweepCache(
    const GraphContext &ctx, const MachineModel &machine,
    const std::vector<int> &earlyRC,
    const std::vector<std::vector<int>> &lateRCPerBranch,
    BoundScratch &scratch)
    : ctx(ctx), machine(machine), earlyRC(earlyRC),
      lateRCPerBranch(lateRCPerBranch), scratch(scratch),
      perBranch(std::size_t(ctx.sb().numBranches()))
{
    bsAssert(int(lateRCPerBranch.size()) == ctx.sb().numBranches(),
             "need one LateRC vector per branch");
}

const detail::SinkSkeleton &
TripleSweepCache::skeletonFor(int branchIdx)
{
    std::unique_ptr<detail::SinkSkeleton> &slot =
        perBranch[std::size_t(branchIdx)];
    if (!slot) {
        ++scratch.stats.tripleSkeletonMisses;
        slot = std::make_unique<detail::SinkSkeleton>();
        slot->build(ctx, earlyRC,
                    lateRCPerBranch[std::size_t(branchIdx)], branchIdx);
    } else {
        ++scratch.stats.tripleSkeletonHits;
    }
    return *slot;
}

void
TripleSweepCache::bindSink(int bk)
{
    bsAssert(bk >= 0 && bk < ctx.sb().numBranches(), "bad sink branch ",
             bk);
    sk = &skeletonFor(bk);
    sinkIdx = bk;
    ekVal = sk->sinkEarly;
    scratch.arena.reset();
    hiBuf = scratch.arena.alloc<int>(std::size_t(sk->n));
    hjBuf = scratch.arena.alloc<int>(std::size_t(sk->n));
}

void
TripleSweepCache::bindTriple(int bi, int bj)
{
    bsAssert(sk, "bindSink first");
    const Superblock &sb = ctx.sb();
    OpId i = sb.branches()[std::size_t(bi)];
    OpId j = sb.branches()[std::size_t(bj)];
    eiVal = earlyRC[std::size_t(i)];
    ejVal = earlyRC[std::size_t(j)];

    const std::vector<int> &heightI = ctx.heightToBranch(bi);
    const std::vector<int> &heightJ = ctx.heightToBranch(bj);
    for (int m = 0; m < sk->n; ++m) {
        OpId x = sk->ops[m];
        hiBuf[std::size_t(m)] = heightI[std::size_t(x)];
        hjBuf[std::size_t(m)] = heightJ[std::size_t(x)];
    }

    // Height of j within the sink's subgraph, for the funnel term.
    hKj = ctx.heightToBranch(sinkIdx)[std::size_t(j)];
}

TriplePoint
TripleSweepCache::eval(int a, int b, BoundCounters *counters)
{
    std::vector<int> &keys = scratch.keys;
    keys.resize(std::size_t(sk->n));

    // Heights compose through the funnel at j: any path using the
    // new edges reaches j before k, so
    //   HjNew[x] = max(height_j[x], height_i[x] + a)
    //   H[x]     = max(height_k[x], HjNew[x] + max(b, height_k[j])).
    // Vectorized like the pair composition; one (bulk) tick per
    // member as before.
    int jToK = std::max(b, hKj);
    ComposeResult r = simdKernels().tripleCompose(
        sk->hSink.data(), hiBuf.data(), hjBuf.data(),
        sk->early.data(), sk->relLate.data(), keys.data(), sk->n, a,
        jToK, ekVal);
    tick(counters, sk->n);

    int tard = sk->relax(machine, scratch, r.cp, r.minKey, r.maxKey,
                         counters);
    int cp = r.cp;

    TriplePoint pt;
    pt.z = composeBound(cp, tard);
    pt.y = std::max(pt.z - b, ejVal);
    pt.x = std::max(pt.y - a, eiVal);
    return pt;
}

} // namespace balance
