/**
 * @file
 * The Pairwise bound (Section 4.2) and the pairwise superblock bound
 * (Section 4.3, Theorem 3).
 *
 * For an ordered branch pair (i, j) with i preceding j, the bound
 * sweeps a forced separation latency l on an added edge i -> j,
 * solves the Rim & Jain relaxation of the subgraph rooted at j for
 * each l, and records the issue-cycle pair
 *     (x_l, y_l) = (bound(j) - l clamped to EarlyRC[i], bound(j)).
 * The pair minimizing w_i x + w_j y lower-bounds the weighted
 * completion of the two branches in any schedule (Theorem 2). The
 * sweep follows Figure 5: start at l0 = EarlyRC[j] - EarlyRC[i],
 * walk down until y reaches EarlyRC[j], then up until x reaches
 * EarlyRC[i]; control-flow ordering keeps l >= branch latency and
 * l <= EarlyRC[j] + 1 suffices.
 *
 * Averaging each branch's value over all pairs containing it yields
 * a whole-superblock weighted-completion-time bound (Theorem 3).
 */

#ifndef BALANCE_BOUNDS_PAIRWISE_HH
#define BALANCE_BOUNDS_PAIRWISE_HH

#include <vector>

#include "bounds/counters.hh"
#include "graph/analysis.hh"
#include "machine/machine_model.hh"

namespace balance
{

struct BoundScratch;

/** Joint lower bound on the issue cycles of a branch pair. */
struct PairPoint
{
    int x = 0; //!< lower bound on the earlier branch's issue cycle
    int y = 0; //!< lower bound on the later branch's issue cycle
};

/** Tuning knobs for the pairwise sweep. */
struct PairwiseOptions
{
    /**
     * Cap on sweep steps per direction. When the downward sweep is
     * truncated by the cap, the pair falls back to the naive point
     * (EarlyRC[i], EarlyRC[j]) to stay a valid lower bound.
     */
    int maxSweepSteps = 512;
};

/**
 * Compute the pairwise bound for branch pair (bi, bj).
 *
 * @param ctx Analysis context (provides heights and closures).
 * @param machine Resource widths.
 * @param earlyRC EarlyRC for every operation.
 * @param lateRCj LateRC for branch bj (lateRCFor output).
 * @param bi Index of the earlier branch in sb().branches().
 * @param bj Index of the later branch; bi < bj required.
 * @param wi Exit probability of branch bi.
 * @param wj Exit probability of branch bj.
 * @param opts Sweep limits.
 * @param counters Optional cost accounting.
 * @return the minimum-cost (x, y) pair.
 */
PairPoint computePairBound(const GraphContext &ctx,
                           const MachineModel &machine,
                           const std::vector<int> &earlyRC,
                           const std::vector<int> &lateRCj, int bi, int bj,
                           double wi, double wj,
                           const PairwiseOptions &opts = {},
                           BoundCounters *counters = nullptr);

/**
 * All pairwise bounds of a superblock plus the Theorem 3 aggregate.
 */
class PairwiseBounds
{
  public:
    /**
     * Compute bounds for every ordered branch pair.
     *
     * @param ctx Analysis context.
     * @param machine Resource widths.
     * @param earlyRC EarlyRC for every operation.
     * @param lateRCPerBranch LateRC vectors, one per branch in
     *        branch order (lateRCFor output for each branch).
     * @param opts Sweep limits.
     * @param counters Optional cost accounting.
     * @param scratch Optional worker-private working storage reused
     *        across calls; a private one is created when null.
     */
    PairwiseBounds(const GraphContext &ctx, const MachineModel &machine,
                   const std::vector<int> &earlyRC,
                   const std::vector<std::vector<int>> &lateRCPerBranch,
                   const PairwiseOptions &opts = {},
                   BoundCounters *counters = nullptr,
                   BoundScratch *scratch = nullptr);

    /** @return the number of branches. */
    int numBranches() const { return b; }

    /**
     * @return the bound pair for branches with indices @p bi < @p bj.
     */
    const PairPoint &pair(int bi, int bj) const;

    /**
     * Theorem 3: weighted-completion-time lower bound
     * sum_i w_i * (avg over pairs containing i of i's value + l_br).
     * Falls back to the naive EarlyRC bound for single-exit blocks;
     * never below the naive bound.
     */
    double superblockWct() const { return wct; }

  private:
    int b = 0;
    std::vector<PairPoint> pairs; //!< row-major upper triangle
    double wct = 0.0;
};

} // namespace balance

#endif // BALANCE_BOUNDS_PAIRWISE_HH
