#include "bounds/relaxation.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace balance
{

void
sortRelaxItems(std::vector<RelaxItem> &items)
{
    // Increasing late time; ties broken by early time and then id for
    // determinism. op ids are unique, so the order is a strict total
    // order and the sorted sequence is unique.
    std::sort(items.begin(), items.end(),
              [](const RelaxItem &a, const RelaxItem &b) {
                  if (a.late != b.late)
                      return a.late < b.late;
                  if (a.early != b.early)
                      return a.early < b.early;
                  return a.op < b.op;
              });
}

int
rjMaxTardinessPresorted(const MachineModel &machine,
                        std::span<const RelaxItem> items,
                        ResourceState &table, BoundCounters *counters)
{
    if (items.empty())
        return negInfBound;

    bsAssert(&table.machine() == &machine,
             "scratch table built for a different machine");
    table.clear();
    int maxTardiness = negInfBound;
    for (const RelaxItem &item : items) {
        bsAssert(item.early >= 0, "negative early time in relaxation");
        int cycle = item.early;
        // Fully pipelined units: each item occupies one slot of its
        // pool for one cycle, so the greedy scan always terminates.
        while (!table.hasSlot(cycle, item.cls)) {
            ++cycle;
            tick(counters);
        }
        table.reserve(cycle, item.cls);
        maxTardiness = std::max(maxTardiness, cycle - item.late);
        tick(counters);
    }
    return maxTardiness;
}

int
rjMaxTardiness(const MachineModel &machine, std::vector<RelaxItem> &items,
               ResourceState &table, BoundCounters *counters)
{
    sortRelaxItems(items);
    return rjMaxTardinessPresorted(machine, items, table, counters);
}

RelaxTable::RelaxTable(const MachineModel &machine) : model(&machine)
{
    lanes.resize(std::size_t(machine.numResources()));
    for (int r = 0; r < machine.numResources(); ++r)
        lanes[std::size_t(r)].width = machine.width(r);
}

void
RelaxTable::grow(Lane &lane, int cycle)
{
    std::size_t size = std::max(lane.occ.size() * 2,
                                std::size_t(cycle) + 1);
    if (size < 64)
        size = 64;
    lane.next.resize(size);
    // Zero words mark virgin cells (the epoch counter starts at 1).
    lane.occ.resize(size, 0);
}

int
RelaxTable::placeSlow(Lane &lane, int from)
{
    // Cycle @p from is full, so the walk continues through next
    // pointers — every full cycle has a valid one — until a free (or
    // virgin) cycle.
    const std::uint64_t full =
        (std::uint64_t(epoch) << 32) + std::uint64_t(lane.width);
    int c = from;
    do {
        int nx = lane.next[std::size_t(c)];
        if (std::size_t(nx) >= lane.occ.size())
            grow(lane, nx);
        c = nx;
    } while (lane.occ[std::size_t(c)] >= full);
    // Path compression: point every full cycle on the walk at the
    // landing cycle so later placements skip straight past the run.
    for (int w = from; w != c;) {
        int nx = lane.next[std::size_t(w)];
        lane.next[std::size_t(w)] = c;
        w = nx;
    }
    return c;
}

int
rjMaxTardinessPresorted(const MachineModel &machine,
                        std::span<const RelaxItem> items,
                        RelaxTable &table, BoundCounters *counters)
{
    if (items.empty())
        return negInfBound;

    bsAssert(&table.machine() == &machine,
             "scratch table built for a different machine");
    table.reset();
    int maxTardiness = negInfBound;
    for (const RelaxItem &item : items) {
        bsAssert(item.early >= 0, "negative early time in relaxation");
        int cycle = table.place(item.cls, item.early);
        maxTardiness = std::max(maxTardiness, cycle - item.late);
        // The naive greedy ticks once per probed full cycle plus
        // once per item; the placement implies that count exactly.
        tick(counters, cycle - item.early + 1);
    }
    return maxTardiness;
}

int
rjMaxTardinessPermuted(const MachineModel &machine,
                       std::span<const std::int32_t> perm,
                       const OpClass *cls, const int *early,
                       const int *keys, int cp, RelaxTable &table,
                       BoundCounters *counters)
{
    if (perm.empty())
        return negInfBound;

    bsAssert(&table.machine() == &machine,
             "scratch table built for a different machine");
    table.reset();
    int maxTardiness = negInfBound;
    for (std::int32_t m : perm) {
        int e = early[m];
        bsAssert(e >= 0, "negative early time in relaxation");
        int cycle = table.place(cls[m], e);
        maxTardiness = std::max(maxTardiness, cycle - (cp + keys[m]));
        tick(counters, cycle - e + 1);
    }
    return maxTardiness;
}

int
rjMaxTardiness(const MachineModel &machine, std::vector<RelaxItem> &items,
               RelaxTable &table, BoundCounters *counters)
{
    sortRelaxItems(items);
    return rjMaxTardinessPresorted(machine, items, table, counters);
}

int
rjMaxTardiness(const MachineModel &machine, std::vector<RelaxItem> &items,
               BoundCounters *counters)
{
    ResourceState table(machine);
    return rjMaxTardiness(machine, items, table, counters);
}

} // namespace balance
