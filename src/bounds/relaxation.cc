#include "bounds/relaxation.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace balance
{

void
sortRelaxItems(std::vector<RelaxItem> &items)
{
    // Increasing late time; ties broken by early time and then id for
    // determinism. op ids are unique, so the order is a strict total
    // order and the sorted sequence is unique.
    std::sort(items.begin(), items.end(),
              [](const RelaxItem &a, const RelaxItem &b) {
                  if (a.late != b.late)
                      return a.late < b.late;
                  if (a.early != b.early)
                      return a.early < b.early;
                  return a.op < b.op;
              });
}

int
rjMaxTardinessPresorted(const MachineModel &machine,
                        std::span<const RelaxItem> items,
                        ResourceState &table, BoundCounters *counters)
{
    if (items.empty())
        return negInfBound;

    bsAssert(&table.machine() == &machine,
             "scratch table built for a different machine");
    table.clear();
    int maxTardiness = negInfBound;
    for (const RelaxItem &item : items) {
        bsAssert(item.early >= 0, "negative early time in relaxation");
        int cycle = item.early;
        // Fully pipelined units: each item occupies one slot of its
        // pool for one cycle, so the greedy scan always terminates.
        while (!table.hasSlot(cycle, item.cls)) {
            ++cycle;
            tick(counters);
        }
        table.reserve(cycle, item.cls);
        maxTardiness = std::max(maxTardiness, cycle - item.late);
        tick(counters);
    }
    return maxTardiness;
}

int
rjMaxTardiness(const MachineModel &machine, std::vector<RelaxItem> &items,
               ResourceState &table, BoundCounters *counters)
{
    sortRelaxItems(items);
    return rjMaxTardinessPresorted(machine, items, table, counters);
}

RelaxTable::RelaxTable(const MachineModel &machine) : model(&machine)
{
    lanes.resize(std::size_t(machine.numResources()));
    for (int r = 0; r < machine.numResources(); ++r)
        lanes[std::size_t(r)].width = machine.width(r);
}

void
RelaxTable::ensure(Lane &lane, int cycle)
{
    if (std::size_t(cycle) < lane.stamp.size())
        return;
    std::size_t size = std::max(lane.stamp.size() * 2,
                                std::size_t(cycle) + 1);
    if (size < 64)
        size = 64;
    lane.fill.resize(size);
    lane.next.resize(size);
    // Zero stamps mark virgin cells (the epoch counter starts at 1).
    lane.stamp.resize(size, 0);
}

int
RelaxTable::place(OpClass cls, int early)
{
    Lane &lane = lanes[std::size_t(model->poolOf(cls))];
    ensure(lane, early);
    int c = early;
    while (lane.stamp[std::size_t(c)] == epoch &&
           lane.fill[std::size_t(c)] >= lane.width) {
        int nx = lane.next[std::size_t(c)];
        ensure(lane, nx);
        c = nx;
    }
    // Path compression: point every full cycle on the walk at the
    // landing cycle so later placements skip straight past the run.
    for (int w = early; w != c;) {
        int nx = lane.next[std::size_t(w)];
        lane.next[std::size_t(w)] = c;
        w = nx;
    }
    if (lane.stamp[std::size_t(c)] != epoch) {
        lane.stamp[std::size_t(c)] = epoch;
        lane.fill[std::size_t(c)] = 0;
    }
    if (++lane.fill[std::size_t(c)] == lane.width) {
        ensure(lane, c + 1);
        lane.next[std::size_t(c)] = c + 1;
    }
    return c;
}

int
rjMaxTardinessPresorted(const MachineModel &machine,
                        std::span<const RelaxItem> items,
                        RelaxTable &table, BoundCounters *counters)
{
    if (items.empty())
        return negInfBound;

    bsAssert(&table.machine() == &machine,
             "scratch table built for a different machine");
    table.reset();
    int maxTardiness = negInfBound;
    for (const RelaxItem &item : items) {
        bsAssert(item.early >= 0, "negative early time in relaxation");
        int cycle = table.place(item.cls, item.early);
        maxTardiness = std::max(maxTardiness, cycle - item.late);
        // The naive greedy ticks once per probed full cycle plus
        // once per item; the placement implies that count exactly.
        tick(counters, cycle - item.early + 1);
    }
    return maxTardiness;
}

int
rjMaxTardiness(const MachineModel &machine, std::vector<RelaxItem> &items,
               RelaxTable &table, BoundCounters *counters)
{
    sortRelaxItems(items);
    return rjMaxTardinessPresorted(machine, items, table, counters);
}

int
rjMaxTardiness(const MachineModel &machine, std::vector<RelaxItem> &items,
               BoundCounters *counters)
{
    ResourceState table(machine);
    return rjMaxTardiness(machine, items, table, counters);
}

} // namespace balance
