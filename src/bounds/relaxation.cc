#include "bounds/relaxation.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace balance
{

int
rjMaxTardiness(const MachineModel &machine, std::vector<RelaxItem> &items,
               BoundCounters *counters)
{
    if (items.empty())
        return -(1 << 28);

    // Process in increasing late time; ties broken by early time and
    // then id for determinism.
    std::sort(items.begin(), items.end(),
              [](const RelaxItem &a, const RelaxItem &b) {
                  if (a.late != b.late)
                      return a.late < b.late;
                  if (a.early != b.early)
                      return a.early < b.early;
                  return a.op < b.op;
              });

    ResourceState table(machine);
    int maxTardiness = -(1 << 28);
    for (const RelaxItem &item : items) {
        bsAssert(item.early >= 0, "negative early time in relaxation");
        int cycle = item.early;
        // Fully pipelined units: each item occupies one slot of its
        // pool for one cycle, so the greedy scan always terminates.
        while (!table.hasSlot(cycle, item.cls)) {
            ++cycle;
            tick(counters);
        }
        table.reserve(cycle, item.cls);
        maxTardiness = std::max(maxTardiness, cycle - item.late);
        tick(counters);
    }
    return maxTardiness;
}

Dag
Dag::fromSuperblock(const Superblock &sb)
{
    Dag dag;
    int v = sb.numOps();
    dag.cls.resize(std::size_t(v));
    dag.preds.resize(std::size_t(v));
    dag.succs.resize(std::size_t(v));
    for (OpId id = 0; id < v; ++id) {
        dag.cls[std::size_t(id)] = sb.op(id).cls;
        auto p = sb.preds(id);
        dag.preds[std::size_t(id)].assign(p.begin(), p.end());
        auto s = sb.succs(id);
        dag.succs[std::size_t(id)].assign(s.begin(), s.end());
    }
    return dag;
}

Dag
Dag::reversedClosure(const Superblock &sb, const DynBitset &nodes,
                     std::vector<OpId> *newToOld)
{
    bsAssert(nodes.size() == std::size_t(sb.numOps()),
             "node mask universe mismatch");

    // New ids in reverse program order: the last original op becomes
    // node 0. Original edges point forward, so flipped edges point
    // forward in the new numbering, preserving topological ids.
    std::vector<OpId> order = nodes.toIndices().empty()
        ? std::vector<OpId>{}
        : [&] {
              auto idx = nodes.toIndices();
              std::vector<OpId> ord(idx.rbegin(), idx.rend());
              return ord;
          }();
    bsAssert(!order.empty(), "reversedClosure of empty node set");

    std::vector<int> newIdOf(std::size_t(sb.numOps()), -1);
    for (std::size_t i = 0; i < order.size(); ++i)
        newIdOf[std::size_t(order[i])] = int(i);

    Dag dag;
    dag.cls.resize(order.size());
    dag.preds.resize(order.size());
    dag.succs.resize(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        OpId orig = order[i];
        dag.cls[i] = sb.op(orig).cls;
        // Original successors inside the mask become predecessors.
        for (const Adjacent &e : sb.succs(orig)) {
            int nid = newIdOf[std::size_t(e.op)];
            if (nid >= 0)
                dag.preds[i].push_back({OpId(nid), e.latency});
        }
        for (const Adjacent &e : sb.preds(orig)) {
            int nid = newIdOf[std::size_t(e.op)];
            if (nid >= 0)
                dag.succs[i].push_back({OpId(nid), e.latency});
        }
    }
    if (newToOld)
        *newToOld = std::move(order);
    return dag;
}

std::vector<int>
dagHeightTo(const Dag &dag, int sink)
{
    bsAssert(sink >= 0 && sink < dag.n(), "unknown sink ", sink);
    std::vector<int> height(std::size_t(dag.n()), -1);
    height[std::size_t(sink)] = 0;
    for (int v = sink; v >= 0; --v) {
        if (height[std::size_t(v)] < 0)
            continue;
        for (const Adjacent &e : dag.preds[std::size_t(v)]) {
            height[std::size_t(e.op)] =
                std::max(height[std::size_t(e.op)],
                         height[std::size_t(v)] + e.latency);
        }
    }
    return height;
}

} // namespace balance
