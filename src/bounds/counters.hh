/**
 * @file
 * Instrumentation counters for the bound algorithms. Table 2 of the
 * paper characterizes each bound's cost by the sum of its loop trip
 * counts; every inner loop in this module ticks a counter so the
 * bench can reproduce that table without wall-clock noise.
 */

#ifndef BALANCE_BOUNDS_COUNTERS_HH
#define BALANCE_BOUNDS_COUNTERS_HH

namespace balance
{

/**
 * Accumulates loop trip counts for one bound computation. Pass
 * nullptr wherever the cost accounting is not wanted; the algorithms
 * check before ticking.
 */
struct BoundCounters
{
    /** Total inner-loop iterations (the paper's "statistics"). */
    long long trips = 0;

    /** Tick @p n loop trips. */
    void
    tick(long long n = 1)
    {
        trips += n;
    }
};

/** Tick helper tolerating null counter pointers. */
inline void
tick(BoundCounters *counters, long long n = 1)
{
    if (counters)
        counters->tick(n);
}

} // namespace balance

#endif // BALANCE_BOUNDS_COUNTERS_HH
