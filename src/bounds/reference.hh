/**
 * @file
 * Retained naive implementations of the resource-aware bounds: the
 * Rim & Jain relaxation, the Langevin & Cerny recursion, LateRC, and
 * the Pairwise/Triplewise sweeps exactly as they were written before
 * the scratch-arena bound engine landed (fresh std::vector per
 * relaxation, full std::sort per sweep step, nested-vector DAGs).
 *
 * The optimized engine in relaxation/pairwise/triplewise must stay
 * *bitwise identical* to this code: the golden-equivalence test
 * (tests/bounds/bound_engine_golden_test.cc) compares the two across
 * a seeded workload population, and bench/bounds_perf.cc uses this
 * path as the wall-clock baseline. Keep this file dumb and frozen —
 * performance work belongs in the main path only.
 */

#ifndef BALANCE_BOUNDS_REFERENCE_HH
#define BALANCE_BOUNDS_REFERENCE_HH

#include <vector>

#include "bounds/superblock_bounds.hh"

namespace balance
{

namespace reference
{

/** Naive Rim & Jain: sorts @p items in place, fresh resource table. */
int rjMaxTardiness(const MachineModel &machine,
                   std::vector<RelaxItem> &items,
                   BoundCounters *counters = nullptr);

/** Naive Langevin & Cerny EarlyRC over the whole superblock. */
std::vector<int> lcEarlyRC(const GraphContext &ctx,
                           const MachineModel &machine,
                           const LcOptions &opts = {},
                           BoundCounters *counters = nullptr);

/** Naive LateRC for one branch (reversed-closure LC). */
std::vector<int> lateRCFor(const GraphContext &ctx,
                           const MachineModel &machine, int branchIdx,
                           const std::vector<int> &earlyRC,
                           BoundCounters *counters = nullptr);

/** Naive pairwise sweep for one branch pair. */
PairPoint computePairBound(const GraphContext &ctx,
                           const MachineModel &machine,
                           const std::vector<int> &earlyRC,
                           const std::vector<int> &lateRCj, int bi, int bj,
                           double wi, double wj,
                           const PairwiseOptions &opts = {},
                           BoundCounters *counters = nullptr);

/** Naive equivalent of PairwiseBounds. */
struct PairwiseResult
{
    int b = 0;
    std::vector<PairPoint> pairs; //!< row-major upper triangle
    double wct = 0.0;

    const PairPoint &
    pair(int bi, int bj) const
    {
        return pairs[std::size_t(bi) * std::size_t(b) + std::size_t(bj)];
    }
};

/** All pairwise bounds plus the Theorem 3 aggregate, naively. */
PairwiseResult pairwiseBounds(
    const GraphContext &ctx, const MachineModel &machine,
    const std::vector<int> &earlyRC,
    const std::vector<std::vector<int>> &lateRCPerBranch,
    const PairwiseOptions &opts = {}, BoundCounters *counters = nullptr);

/**
 * Naive triplewise bound. @p pairwiseWct supplies the fallback value
 * (the naive pairwise aggregate).
 */
TriplewiseResult computeTriplewise(
    const GraphContext &ctx, const MachineModel &machine,
    const std::vector<int> &earlyRC,
    const std::vector<std::vector<int>> &lateRCPerBranch,
    double pairwiseWct, const TriplewiseOptions &opts = {},
    BoundCounters *counters = nullptr);

/**
 * All six WCT bounds through the naive path only; mirrors
 * balance::computeWctBounds bit for bit.
 */
WctBounds computeWctBounds(const GraphContext &ctx,
                           const MachineModel &machine,
                           const BoundConfig &config = {},
                           BoundCounterSet *counters = nullptr);

} // namespace reference

} // namespace balance

#endif // BALANCE_BOUNDS_REFERENCE_HH
