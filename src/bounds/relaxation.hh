/**
 * @file
 * The Rim & Jain relaxation (Section 4.1): the workhorse shared by
 * every resource-aware bound in this library.
 *
 * The relaxed problem drops all dependence edges and keeps, for each
 * operation i, an issue window [early_i, late_i + (c - CP)] plus the
 * per-cycle functional-unit limits, where c is the schedule length
 * being bounded. Processing operations in increasing late order and
 * greedily placing each in the earliest feasible cycle solves the
 * relaxation exactly; the lower bound is
 *     CP + max(0, max_i (t_i - late_i)).
 *
 * This file also provides a generic Dag container so the same engine
 * can run on a superblock, on a subgraph rooted at a branch, or on a
 * reversed subgraph (for LateRC).
 */

#ifndef BALANCE_BOUNDS_RELAXATION_HH
#define BALANCE_BOUNDS_RELAXATION_HH

#include <vector>

#include "bounds/counters.hh"
#include "graph/analysis.hh"
#include "graph/superblock.hh"
#include "machine/machine_model.hh"
#include "machine/resource_state.hh"

namespace balance
{

/** One operation of a relaxation instance. */
struct RelaxItem
{
    OpId op = invalidOp;   //!< caller-meaningful identity
    OpClass cls = OpClass::IntAlu;
    int early = 0;         //!< earliest issue cycle
    int late = 0;          //!< latest issue cycle at schedule length CP
};

/**
 * Solve the Rim & Jain relaxation.
 *
 * @param machine Resource widths.
 * @param items Operations with their windows; reordered in place by
 *        increasing late time (the greedy's processing order).
 * @param counters Optional loop-trip accounting.
 * @return max over items of (t_i - late_i); negative when every
 *         operation meets its deadline. The caller's bound is
 *         CP + max(0, result).
 */
int rjMaxTardiness(const MachineModel &machine,
                   std::vector<RelaxItem> &items,
                   BoundCounters *counters = nullptr);

/**
 * Generic DAG with topologically numbered nodes, used where the
 * bound must run on something other than the superblock itself
 * (reversed subgraphs for LateRC). Edges always point from a lower
 * to a higher node id.
 */
struct Dag
{
    /** Class of each node (determines the resource pool). */
    std::vector<OpClass> cls;
    /** Predecessor adjacency with edge latencies. */
    std::vector<std::vector<Adjacent>> preds;
    /** Successor adjacency with edge latencies. */
    std::vector<std::vector<Adjacent>> succs;

    /** @return the number of nodes. */
    int n() const { return int(cls.size()); }

    /** Wrap a whole superblock (ids map one-to-one). */
    static Dag fromSuperblock(const Superblock &sb);

    /**
     * Build the reversed subgraph over @p nodes (typically
     * closure(b)): node order is the reverse of the original program
     * order, every edge flips direction and keeps its latency.
     *
     * @param sb The source superblock.
     * @param nodes Mask of operations to include.
     * @param newToOld Receives, for each new node id, the original
     *        OpId (may be null).
     */
    static Dag reversedClosure(const Superblock &sb, const DynBitset &nodes,
                               std::vector<OpId> *newToOld);
};

/**
 * Longest path from each node of @p dag to @p sink (nodes without a
 * path get -1; sink gets 0). Mirrors computeHeightTo for Dag.
 */
std::vector<int> dagHeightTo(const Dag &dag, int sink);

} // namespace balance

#endif // BALANCE_BOUNDS_RELAXATION_HH
