/**
 * @file
 * The Rim & Jain relaxation (Section 4.1): the workhorse shared by
 * every resource-aware bound in this library.
 *
 * The relaxed problem drops all dependence edges and keeps, for each
 * operation i, an issue window [early_i, late_i + (c - CP)] plus the
 * per-cycle functional-unit limits, where c is the schedule length
 * being bounded. Processing operations in increasing late order and
 * greedily placing each in the earliest feasible cycle solves the
 * relaxation exactly; the lower bound is
 *     CP + max(0, max_i (t_i - late_i)).
 *
 * The (late, early, op) processing order is a strict total order (op
 * ids are unique), so the sorted sequence is unique: any caller that
 * produces it — std::sort here, or the bucketed repair pass of the
 * pairwise sweep cache — feeds the greedy the same items in the same
 * order and gets bitwise-identical tardiness. rjMaxTardinessPresorted
 * is that shared greedy core; the sweep engine calls it directly on
 * pre-ordered spans, reusing one ResourceState across thousands of
 * relaxations instead of constructing a fresh table per call.
 */

#ifndef BALANCE_BOUNDS_RELAXATION_HH
#define BALANCE_BOUNDS_RELAXATION_HH

#include <cstdint>
#include <span>
#include <vector>

#include "bounds/bound_limits.hh"
#include "bounds/counters.hh"
#include "graph/analysis.hh"
#include "graph/dag.hh"
#include "graph/superblock.hh"
#include "machine/machine_model.hh"
#include "machine/resource_state.hh"

namespace balance
{

/** One operation of a relaxation instance. */
struct RelaxItem
{
    OpId op = invalidOp;   //!< caller-meaningful identity
    OpClass cls = OpClass::IntAlu;
    int early = 0;         //!< earliest issue cycle
    int late = 0;          //!< latest issue cycle at schedule length CP
};

/**
 * Solve the Rim & Jain relaxation.
 *
 * @param machine Resource widths.
 * @param items Operations with their windows; reordered in place by
 *        increasing late time (the greedy's processing order).
 * @param counters Optional loop-trip accounting.
 * @return max over items of (t_i - late_i); negative when every
 *         operation meets its deadline. The caller's bound is
 *         CP + max(0, result). negInfBound when @p items is empty.
 */
int rjMaxTardiness(const MachineModel &machine,
                   std::vector<RelaxItem> &items,
                   BoundCounters *counters = nullptr);

/**
 * As above, but reuses @p table (cleared here) instead of
 * constructing a fresh reservation table — the allocation-free form
 * for callers holding a BoundScratch.
 */
int rjMaxTardiness(const MachineModel &machine,
                   std::vector<RelaxItem> &items, ResourceState &table,
                   BoundCounters *counters = nullptr);

/**
 * Placement structure specialized for the RJ greedy: per-pool
 * next-free-cycle skip pointers with path compression make each
 * placement amortized near-constant instead of a linear probe over
 * full cycles, and an epoch stamp makes reset() O(1).
 *
 * Placements are identical to probing a fresh reservation table
 * cycle by cycle (earliest non-full cycle of the pool at or after
 * the early time), and the probe count the naive loop would have
 * performed is recovered exactly as (placed - early), so the Table 2
 * trip accounting is unchanged — see rjMaxTardinessPresorted below.
 */
class RelaxTable
{
  public:
    /** @param machine Pool widths; must outlive the table. */
    explicit RelaxTable(const MachineModel &machine);

    /** The table keeps a pointer: temporaries are a bug. */
    explicit RelaxTable(MachineModel &&) = delete;

    /** @return the machine this table was built for. */
    const MachineModel &machine() const { return *model; }

    /** Forget all placements in O(1). */
    void
    reset()
    {
        ++epoch;
        ++resets;
    }

    /** @return how many times reset() ran. Telemetry only. */
    long long resetCount() const { return resets; }

    /**
     * Place one operation of class @p cls into the earliest cycle
     * >= @p early with a free unit of its pool.
     *
     * @return the chosen cycle.
     */
    int place(OpClass cls, int early);

  private:
    /** One pool's cycle occupancy, valid for the current epoch. */
    struct Lane
    {
        std::vector<int> fill; //!< units used (when stamp == epoch)
        std::vector<int> next; //!< skip pointer once a cycle is full
        std::vector<std::uint64_t> stamp; //!< epoch owning fill/next
        int width = 0;
    };

    void ensure(Lane &lane, int cycle);

    const MachineModel *model;
    std::vector<Lane> lanes;
    std::uint64_t epoch = 1;
    /** Epoch bumps since construction (telemetry). */
    long long resets = 0;
};

/**
 * As above over a RelaxTable — the bound engine's fast path.
 */
int rjMaxTardiness(const MachineModel &machine,
                   std::vector<RelaxItem> &items, RelaxTable &table,
                   BoundCounters *counters = nullptr);

/**
 * The greedy core: @p items MUST already be in increasing
 * (late, early, op) order. Clears and reuses @p table. Loop-trip
 * accounting is identical to the sorting overloads — the sort never
 * ticks.
 */
int rjMaxTardinessPresorted(const MachineModel &machine,
                            std::span<const RelaxItem> items,
                            ResourceState &table,
                            BoundCounters *counters = nullptr);

/**
 * The greedy core over a RelaxTable. Placements match the
 * ResourceState form bit for bit, and each item ticks
 * (placed - early + 1) trips — exactly the probe-plus-place count of
 * the naive loop — so counter totals are identical too.
 */
int rjMaxTardinessPresorted(const MachineModel &machine,
                            std::span<const RelaxItem> items,
                            RelaxTable &table,
                            BoundCounters *counters = nullptr);

/** Sort @p items into the canonical (late, early, op) greedy order. */
void sortRelaxItems(std::vector<RelaxItem> &items);

} // namespace balance

#endif // BALANCE_BOUNDS_RELAXATION_HH
