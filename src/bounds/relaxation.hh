/**
 * @file
 * The Rim & Jain relaxation (Section 4.1): the workhorse shared by
 * every resource-aware bound in this library.
 *
 * The relaxed problem drops all dependence edges and keeps, for each
 * operation i, an issue window [early_i, late_i + (c - CP)] plus the
 * per-cycle functional-unit limits, where c is the schedule length
 * being bounded. Processing operations in increasing late order and
 * greedily placing each in the earliest feasible cycle solves the
 * relaxation exactly; the lower bound is
 *     CP + max(0, max_i (t_i - late_i)).
 *
 * The (late, early, op) processing order is a strict total order (op
 * ids are unique), so the sorted sequence is unique: any caller that
 * produces it — std::sort here, or the bucketed repair pass of the
 * pairwise sweep cache — feeds the greedy the same items in the same
 * order and gets bitwise-identical tardiness. rjMaxTardinessPresorted
 * is that shared greedy core; the sweep engine calls the permuted SoA
 * form directly on its cached member arrays, reusing one RelaxTable
 * across thousands of relaxations instead of constructing a fresh
 * table per call.
 */

#ifndef BALANCE_BOUNDS_RELAXATION_HH
#define BALANCE_BOUNDS_RELAXATION_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "bounds/bound_limits.hh"
#include "bounds/counters.hh"
#include "graph/analysis.hh"
#include "graph/dag.hh"
#include "graph/superblock.hh"
#include "machine/machine_model.hh"
#include "machine/resource_state.hh"

namespace balance
{

/** One operation of a relaxation instance. */
struct RelaxItem
{
    OpId op = invalidOp;   //!< caller-meaningful identity
    OpClass cls = OpClass::IntAlu;
    int early = 0;         //!< earliest issue cycle
    int late = 0;          //!< latest issue cycle at schedule length CP
};

/**
 * Solve the Rim & Jain relaxation.
 *
 * @param machine Resource widths.
 * @param items Operations with their windows; reordered in place by
 *        increasing late time (the greedy's processing order).
 * @param counters Optional loop-trip accounting.
 * @return max over items of (t_i - late_i); negative when every
 *         operation meets its deadline. The caller's bound is
 *         CP + max(0, result). negInfBound when @p items is empty.
 */
int rjMaxTardiness(const MachineModel &machine,
                   std::vector<RelaxItem> &items,
                   BoundCounters *counters = nullptr);

/**
 * As above, but reuses @p table (cleared here) instead of
 * constructing a fresh reservation table — the allocation-free form
 * for callers holding a BoundScratch.
 */
int rjMaxTardiness(const MachineModel &machine,
                   std::vector<RelaxItem> &items, ResourceState &table,
                   BoundCounters *counters = nullptr);

/**
 * Placement structure specialized for the RJ greedy. Occupancy is
 * structure-of-arrays per pool: one packed u64 per cycle — the epoch
 * stamp in the high word, the fill count in the low word — plus a
 * next-free skip pointer. The packing turns the placement test into
 * a single load and unsigned compare: a cycle is full iff its word
 * >= (epoch << 32) + width (a stale or virgin word has a smaller
 * high half and can never reach the threshold), and occupying a
 * cycle is one store of either word+1 or (epoch << 32) + 1. A
 * placement checks the early cycle, follows one skip hop inline (a
 * one-hop walk needs no path compression), and only then falls into
 * the path-compressed skip-pointer walk, keeping worst-case
 * amortized near-constant placements even on width-1 pools; reset()
 * stays O(1) via the epoch bump. (The vectorized epoch-scan window
 * probe in the SimdKernels table was measured here and lost: with
 * ~20M placements per bound pass the indirect call outweighs the
 * 8-wide compare, and on backed-up pools the compressed walk skips
 * runs the linear probe must scan. The kernel remains a tested
 * primitive; see docs/PERFORMANCE.md.)
 *
 * Placements are identical to probing a fresh reservation table
 * cycle by cycle (earliest non-full cycle of the pool at or after
 * the early time) no matter which path found them, and the probe
 * count the naive loop would have performed is recovered exactly as
 * (placed - early), so the Table 2 trip accounting is unchanged;
 * see rjMaxTardinessPresorted.
 */
class RelaxTable
{
  public:
    /** @param machine Pool widths; must outlive the table. */
    explicit RelaxTable(const MachineModel &machine);

    /** The table keeps a pointer: temporaries are a bug. */
    explicit RelaxTable(MachineModel &&) = delete;

    /** @return the machine this table was built for. */
    const MachineModel &machine() const { return *model; }

    /** Forget all placements in O(1). */
    void
    reset()
    {
        if (++epoch == 0) {
            // u32 epoch wrapped: scrub the stamps so no stale cell
            // from four billion resets ago can alias the new epoch.
            for (Lane &lane : lanes)
                std::fill(lane.occ.begin(), lane.occ.end(),
                          std::uint64_t(0));
            epoch = 1;
        }
        ++resets;
    }

    /** @return how many times reset() ran. Telemetry only. */
    long long resetCount() const { return resets; }

    /**
     * Place one operation of class @p cls into the earliest cycle
     * >= @p early with a free unit of its pool.
     *
     * @return the chosen cycle.
     */
    int
    place(OpClass cls, int early)
    {
        Lane &lane = lanes[std::size_t(model->poolOf(cls))];
        if (std::size_t(early) >= lane.occ.size())
            grow(lane, early);
        const std::uint64_t fresh = std::uint64_t(epoch) << 32;
        const std::uint64_t full = fresh + std::uint64_t(lane.width);
        int c = early;
        if (lane.occ[std::size_t(c)] >= full) {
            // next[c] is valid: c filled during the current epoch.
            int nx = lane.next[std::size_t(c)];
            if (std::size_t(nx) >= lane.occ.size())
                grow(lane, nx);
            if (lane.occ[std::size_t(nx)] < full)
                c = nx; // one hop: compression would be a no-op
            else
                c = placeSlow(lane, early);
        }
        std::uint64_t occ = lane.occ[std::size_t(c)];
        occ = occ >= fresh ? occ + 1 : fresh + 1;
        lane.occ[std::size_t(c)] = occ;
        if (occ == full) {
            if (std::size_t(c) + 1 >= lane.occ.size())
                grow(lane, c + 1);
            lane.next[std::size_t(c)] = c + 1;
        }
        return c;
    }

  private:
    /** One pool's cycle occupancy, valid for the current epoch. */
    struct Lane
    {
        /** Per cycle: (epoch << 32) | units used this epoch. */
        std::vector<std::uint64_t> occ;
        std::vector<int> next; //!< skip pointer once a cycle is full
        int width = 0;
    };

    /** Resize the lane's arrays to cover @p cycle (amortized). */
    void grow(Lane &lane, int cycle);

    /**
     * Skip-pointer walk with path compression for placements whose
     * early cycle is already full; @p from is that (full) cycle.
     */
    int placeSlow(Lane &lane, int from);

    const MachineModel *model;
    std::vector<Lane> lanes;
    std::uint32_t epoch = 1;
    /** Epoch bumps since construction (telemetry). */
    long long resets = 0;
};

/**
 * As above over a RelaxTable — the bound engine's fast path.
 */
int rjMaxTardiness(const MachineModel &machine,
                   std::vector<RelaxItem> &items, RelaxTable &table,
                   BoundCounters *counters = nullptr);

/**
 * The greedy core: @p items MUST already be in increasing
 * (late, early, op) order. Clears and reuses @p table. Loop-trip
 * accounting is identical to the sorting overloads — the sort never
 * ticks.
 */
int rjMaxTardinessPresorted(const MachineModel &machine,
                            std::span<const RelaxItem> items,
                            ResourceState &table,
                            BoundCounters *counters = nullptr);

/**
 * The greedy core over a RelaxTable. Placements match the
 * ResourceState form bit for bit, and each item ticks
 * (placed - early + 1) trips — exactly the probe-plus-place count of
 * the naive loop — so counter totals are identical too.
 */
int rjMaxTardinessPresorted(const MachineModel &machine,
                            std::span<const RelaxItem> items,
                            RelaxTable &table,
                            BoundCounters *counters = nullptr);

/**
 * The greedy core over structure-of-arrays member data — the sweep
 * engine's form, which never materializes RelaxItems. @p perm lists
 * member indices in the canonical (late, early, op) order; member m
 * has class @p cls[m], early time @p early[m], and late time
 * @p cp + @p keys[m]. Placements and ticks are identical to building
 * the items and calling the span overload.
 */
int rjMaxTardinessPermuted(const MachineModel &machine,
                           std::span<const std::int32_t> perm,
                           const OpClass *cls, const int *early,
                           const int *keys, int cp, RelaxTable &table,
                           BoundCounters *counters = nullptr);

/** Sort @p items into the canonical (late, early, op) greedy order. */
void sortRelaxItems(std::vector<RelaxItem> &items);

} // namespace balance

#endif // BALANCE_BOUNDS_RELAXATION_HH
