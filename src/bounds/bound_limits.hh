/**
 * @file
 * Shared sentinel values for the bound algorithms.
 */

#ifndef BALANCE_BOUNDS_BOUND_LIMITS_HH
#define BALANCE_BOUNDS_BOUND_LIMITS_HH

namespace balance
{

/**
 * Identity element of the max-tardiness fold: what an *empty*
 * relaxation returns. Far enough below any reachable tardiness that
 * `cp + max(0, negInfBound)` composes to the plain critical-path
 * bound in the pair/triple sweeps, yet far from INT_MIN so callers
 * may add latencies and anchors without overflow. The positive
 * counterpart for late times is lateUnconstrained (graph/analysis.hh).
 */
constexpr int negInfBound = -(1 << 28);

} // namespace balance

#endif // BALANCE_BOUNDS_BOUND_LIMITS_HH
