/**
 * @file
 * Shared sentinel values for the bound algorithms, and the one
 * sanctioned way to fold a relaxation's tardiness into an anchored
 * bound. Every consumer of a max-tardiness result composes through
 * composeBound() so the empty-relaxation sentinel can never leak
 * into downstream arithmetic (incumbent comparisons in the
 * branch-and-bound search, weighted sums in the WCT aggregates).
 */

#ifndef BALANCE_BOUNDS_BOUND_LIMITS_HH
#define BALANCE_BOUNDS_BOUND_LIMITS_HH

namespace balance
{

/**
 * Identity element of the max-tardiness fold: what an *empty*
 * relaxation returns. Far enough below any reachable tardiness that
 * composeBound(cp, negInfBound) collapses to the plain critical-path
 * bound in the pair/triple sweeps, yet far from INT_MIN so callers
 * may add latencies and anchors without overflow. The positive
 * counterpart for late times is lateUnconstrained (graph/analysis.hh).
 */
constexpr int negInfBound = -(1 << 28);

/**
 * Ceiling for composed issue-cycle bounds; mirrors
 * lateUnconstrained so a saturated bound still compares sanely
 * against real cycles and weighted sums stay finite.
 */
constexpr int maxBoundCycle = 1 << 28;

/**
 * @return true when @p tardiness is the empty-relaxation sentinel
 *         (or has drifted from it by bounded arithmetic). Comparing
 *         against negInfBound / 2 keeps the test robust to callers
 *         that added latencies or anchors to a sentinel.
 */
constexpr bool
isNegInfBound(int tardiness)
{
    return tardiness <= negInfBound / 2;
}

/**
 * Fold a relaxation tardiness into an anchored issue-cycle bound:
 * `anchor + max(0, tardiness)`, with two guards the naked expression
 * lacks. The sentinel is treated as "no constraint" (the anchor
 * passes through untouched, so negInfBound never participates in
 * later incumbent arithmetic), and the sum saturates at
 * maxBoundCycle instead of overflowing when an already-saturated
 * anchor meets a large positive tardiness.
 */
constexpr int
composeBound(int anchor, int tardiness)
{
    if (isNegInfBound(tardiness) || tardiness <= 0)
        return anchor;
    if (anchor >= maxBoundCycle - tardiness)
        return maxBoundCycle;
    return anchor + tardiness;
}

} // namespace balance

#endif // BALANCE_BOUNDS_BOUND_LIMITS_HH
