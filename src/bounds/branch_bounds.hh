/**
 * @file
 * Per-branch and per-operation lower bounds from Section 4.1:
 *
 *  - cpEarly:  dependence critical path (EarlyDC at each branch);
 *  - huEarly:  Hu's deadline-counting resource bound;
 *  - rjEarly:  the Rim & Jain relaxation bound per branch;
 *  - lcEarlyRC: the Langevin & Cerny recursive bound EarlyRC for
 *    every operation, with the Theorem 1 (trivial bound recursion)
 *    shortcut that skips ~30% of the expensive recomputations;
 *  - lateRC:   resource-aware late times per branch, computed by
 *    running LC on the reversed predecessor subgraph.
 */

#ifndef BALANCE_BOUNDS_BRANCH_BOUNDS_HH
#define BALANCE_BOUNDS_BRANCH_BOUNDS_HH

#include <vector>

#include "bounds/counters.hh"
#include "bounds/relaxation.hh"
#include "graph/analysis.hh"
#include "machine/machine_model.hh"

namespace balance
{

/**
 * Dependence-only bound: earliest issue of each branch is EarlyDC.
 *
 * @return one entry per branch, in branch order.
 */
std::vector<int> cpEarly(const GraphContext &ctx);

/**
 * Hu's bound per branch: EarlyDC[b] plus the largest deadline
 * violation over all Elementary Resource Constraints computed from
 * dependence late times (the static form of Section 5.1, Step 2).
 *
 * @return one entry per branch, in branch order.
 */
std::vector<int> huEarly(const GraphContext &ctx,
                         const MachineModel &machine,
                         BoundCounters *counters = nullptr);

/**
 * Rim & Jain bound per branch: solve the relaxation over the
 * subgraph rooted at the branch with EarlyDC/LateDC windows.
 *
 * @return one entry per branch, in branch order.
 */
std::vector<int> rjEarly(const GraphContext &ctx,
                         const MachineModel &machine,
                         BoundCounters *counters = nullptr);

/** Options for the Langevin & Cerny computation. */
struct LcOptions
{
    /**
     * Apply Theorem 1: when an operation has a unique direct
     * predecessor and a positive edge latency, copy the
     * predecessor's bound plus the latency instead of re-solving the
     * relaxation. Disable to reproduce the paper's "LC-original"
     * cost row in Table 2 (the bound values are identical).
     */
    bool useTheorem1 = true;
};

/**
 * Langevin & Cerny EarlyRC for every node of @p dag, in topological
 * order: each node's bound is the RJ relaxation of its predecessor
 * closure using the already-computed EarlyRC values as early times.
 *
 * @return EarlyRC per node.
 */
std::vector<int> lcEarlyRC(const Dag &dag, const MachineModel &machine,
                           const LcOptions &opts = {},
                           BoundCounters *counters = nullptr);

/**
 * Convenience wrapper: EarlyRC for every operation of a superblock.
 */
std::vector<int> lcEarlyRCForSuperblock(const GraphContext &ctx,
                                        const MachineModel &machine,
                                        const LcOptions &opts = {},
                                        BoundCounters *counters = nullptr);

/**
 * Resource-aware late times for one branch (Section 4.1, last
 * paragraph): run LC on the reversed predecessor subgraph G' of
 * branch b; then LateRC_b[v] = EarlyRC[b] - EarlyRC_G'[v].
 *
 * @param ctx Analysis context.
 * @param machine Resource widths.
 * @param branchIdx Position of b in ctx.sb().branches().
 * @param earlyRC EarlyRC for all operations (forward direction).
 * @param counters Optional cost accounting (the paper's LC-reverse).
 * @return LateRC per operation; lateUnconstrained for operations
 *         outside closure(b).
 */
std::vector<int> lateRCFor(const GraphContext &ctx,
                           const MachineModel &machine, int branchIdx,
                           const std::vector<int> &earlyRC,
                           BoundCounters *counters = nullptr);

} // namespace balance

#endif // BALANCE_BOUNDS_BRANCH_BOUNDS_HH
