/**
 * @file
 * Whole-superblock weighted-completion-time lower bounds: the naive
 * per-branch aggregation sum_i w_i (early_i + l_br) for each of the
 * CP / Hu / RJ / LC bounds, plus the Pairwise (Theorem 3) and
 * Triplewise aggregates, and the "tightest bound" used throughout
 * the paper's evaluation.
 *
 * BoundsToolkit bundles the artifacts the Balance heuristic consumes
 * (EarlyRC, per-branch LateRC, pairwise tradeoff points) so they are
 * computed once per (superblock, machine) pair.
 */

#ifndef BALANCE_BOUNDS_SUPERBLOCK_BOUNDS_HH
#define BALANCE_BOUNDS_SUPERBLOCK_BOUNDS_HH

#include <memory>
#include <vector>

#include "bounds/branch_bounds.hh"
#include "bounds/pairwise.hh"
#include "bounds/triplewise.hh"
#include "graph/analysis.hh"
#include "machine/machine_model.hh"

namespace balance
{

/**
 * Weighted completion time from per-branch issue-cycle bounds:
 * sum over branches of exitProb * (early + branch latency).
 */
double wctFromBranchEarly(const Superblock &sb,
                          const std::vector<int> &earlyPerBranch);

/** The six WCT lower bounds of Table 1, for one superblock. */
struct WctBounds
{
    double cp = 0.0; //!< critical path (dependence only)
    double hu = 0.0; //!< Hu deadline counting
    double rj = 0.0; //!< Rim & Jain relaxation
    double lc = 0.0; //!< Langevin & Cerny recursive bound
    double pw = 0.0; //!< Pairwise superblock bound (Theorem 3)
    double tw = 0.0; //!< Triplewise superblock bound

    /** @return the maximum (tightest) of the six bounds. */
    double tightest() const;
};

/** Configuration for computeWctBounds / BoundsToolkit. */
struct BoundConfig
{
    LcOptions lc;
    PairwiseOptions pairwise;
    TriplewiseOptions triplewise;
    bool computePairwise = true;
    bool computeTriplewise = true;
};

/** Optional per-algorithm cost accounting (Table 2). */
struct BoundCounterSet
{
    BoundCounters cp;
    BoundCounters hu;
    BoundCounters rj;
    BoundCounters lc;
    BoundCounters lcReverse;
    BoundCounters pw;
    BoundCounters tw;
};

/**
 * Everything the Balance scheduler needs from Section 4, computed
 * once per (superblock, machine): EarlyRC per operation, LateRC per
 * branch, and the pairwise tradeoff points.
 */
class BoundsToolkit
{
  public:
    /**
     * @param ctx Analysis context (must outlive the toolkit).
     * @param machine Resource widths (must outlive the toolkit).
     * @param config Algorithm options.
     * @param counters Optional per-algorithm cost accounting.
     * @param scratch Optional worker-private working storage reused
     *        across calls; a private one is created when needed.
     */
    BoundsToolkit(const GraphContext &ctx, const MachineModel &machine,
                  const BoundConfig &config = {},
                  BoundCounterSet *counters = nullptr,
                  BoundScratch *scratch = nullptr);

    /** @return the analysis context. */
    const GraphContext &ctx() const { return *context; }

    /** @return EarlyRC for every operation. */
    const std::vector<int> &earlyRC() const { return earlyRCPerOp; }

    /** @return LateRC for branch index @p branchIdx. */
    const std::vector<int> &lateRC(int branchIdx) const;

    /** @return all per-branch LateRC vectors, in branch order. */
    const std::vector<std::vector<int>> &
    lateRCAll() const
    {
        return lateRCPerBranch;
    }

    /** @return pairwise bounds (null when disabled in config). */
    const PairwiseBounds *pairwise() const { return pw.get(); }

  private:
    const GraphContext *context;
    std::vector<int> earlyRCPerOp;
    std::vector<std::vector<int>> lateRCPerBranch;
    std::unique_ptr<PairwiseBounds> pw;
};

/**
 * Compute all six WCT lower bounds for one superblock.
 *
 * @param ctx Analysis context.
 * @param machine Resource widths.
 * @param config Algorithm options (PW/TW can be disabled).
 * @param counters Optional per-algorithm cost accounting.
 * @param scratch Optional worker-private working storage reused
 *        across calls; a private one is created when needed.
 */
WctBounds computeWctBounds(const GraphContext &ctx,
                           const MachineModel &machine,
                           const BoundConfig &config = {},
                           BoundCounterSet *counters = nullptr,
                           BoundScratch *scratch = nullptr);

} // namespace balance

#endif // BALANCE_BOUNDS_SUPERBLOCK_BOUNDS_HH
