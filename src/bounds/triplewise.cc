#include "bounds/triplewise.hh"

#include <algorithm>
#include <memory>

#include "bounds/bound_scratch.hh"
#include "bounds/pair_sweep.hh"
#include "bounds/relaxation.hh"
#include "support/diagnostics.hh"
#include "support/perf_counters.hh"

namespace balance
{

TriplewiseResult
computeTriplewise(const GraphContext &ctx, const MachineModel &machine,
                  const std::vector<int> &earlyRC,
                  const std::vector<std::vector<int>> &lateRCPerBranch,
                  const PairwiseBounds &pw, const TriplewiseOptions &opts,
                  BoundCounters *counters, BoundScratch *scratch)
{
    PerfRegion perf(PerfPhase::TripleSweep);
    const Superblock &sb = ctx.sb();
    int numBr = sb.numBranches();

    TriplewiseResult result;
    if (numBr < 3 || numBr > opts.maxBranches) {
        result.wct = pw.superblockWct();
        result.fellBack = true;
        return result;
    }

    std::unique_ptr<BoundScratch> owned;
    if (!scratch) {
        owned = std::make_unique<BoundScratch>(machine);
        scratch = owned.get();
    }
    TripleSweepCache cache(ctx, machine, earlyRC, lateRCPerBranch,
                           *scratch);

    // Per-branch accumulation for the partial Theorem 3 extension.
    std::vector<double> sums(std::size_t(numBr), 0.0);
    std::vector<long long> counts(std::size_t(numBr), 0);
    long long evals = 0;

    // The enumeration order is load-bearing: maxEvals may truncate
    // it, so visiting triples in any other order would change which
    // ones contribute to the partial aggregate.
    for (int bi = 0; bi < numBr && evals < opts.maxEvals; ++bi) {
        for (int bj = bi + 1; bj < numBr && evals < opts.maxEvals; ++bj) {
            for (int bk = bj + 1; bk < numBr && evals < opts.maxEvals;
                 ++bk) {
                OpId i = sb.branches()[std::size_t(bi)];
                OpId j = sb.branches()[std::size_t(bj)];
                OpId k = sb.branches()[std::size_t(bk)];
                double wi = sb.exitProb(i);
                double wj = sb.exitProb(j);
                double wk = sb.exitProb(k);

                cache.bindSink(bk);
                cache.bindTriple(bi, bj);
                int ei = cache.ei();
                int ej = cache.ej();
                int ek = cache.ek();

                int aMin = sb.op(i).latency;
                int bMin = sb.op(j).latency;
                // Unlike the pairwise case, Theorem 2's termination
                // property does not transfer to the i-coordinate of
                // a triple (x derives from the k-anchored bound), so
                // the a-sweep may need to reach past EarlyRC[j] + 1;
                // the boundary column below keeps any cap sound.
                int aCap = std::min(ek + 1, aMin + opts.maxLatRange);
                int bCap = std::min(ek + 1, bMin + opts.maxLatRange);

                TriplePoint best;
                bool haveBest = false;
                auto record = [&](TriplePoint pt) {
                    double cost = wi * pt.x + wj * pt.y + wk * pt.z;
                    if (!haveBest ||
                        cost < wi * best.x + wj * best.y + wk * best.z) {
                        best = pt;
                        haveBest = true;
                    }
                };

                for (int a = aMin; a <= aCap; ++a) {
                    bool columnAllXAtFloor = true;
                    int yFloor = std::max(ej, ei + a);
                    bool innerBroke = false;
                    TriplePoint last{};
                    for (int b = bMin; b <= bCap; ++b) {
                        TriplePoint pt = cache.eval(a, b, counters);
                        ++evals;
                        // Boundary column: relax coordinates to the
                        // individual bounds so separations beyond the
                        // sweep stay covered (sound: only lowers).
                        if (a == aCap) {
                            pt.x = ei;
                            pt.y = ej;
                        }
                        record(pt);
                        last = pt;
                        if (pt.x != ei)
                            columnAllXAtFloor = false;
                        // Once both x and y sit at their floors for
                        // this column, larger b only raises z:
                        // schedules with larger separations are
                        // dominated by this candidate.
                        if (pt.x == ei && pt.y <= yFloor) {
                            innerBroke = true;
                            break;
                        }
                        if (evals >= opts.maxEvals)
                            break;
                    }
                    if (!innerBroke) {
                        // Capped fallback covering separations past
                        // bCap at this exact a.
                        TriplePoint capped{ei, yFloor, last.z};
                        if (a == aCap)
                            capped.y = ej;
                        record(capped);
                    }
                    if (columnAllXAtFloor)
                        break;
                    if (evals >= opts.maxEvals)
                        break;
                }

                if (haveBest) {
                    sums[std::size_t(bi)] += best.x;
                    sums[std::size_t(bj)] += best.y;
                    sums[std::size_t(bk)] += best.z;
                    ++counts[std::size_t(bi)];
                    ++counts[std::size_t(bj)];
                    ++counts[std::size_t(bk)];
                    ++result.triplesEvaluated;
                }
            }
        }
    }

    long long cmax = *std::max_element(counts.begin(), counts.end());
    if (cmax == 0) {
        result.wct = pw.superblockWct();
        result.fellBack = true;
        return result;
    }

    // Partial Theorem 3: pad branches with fewer triples using the
    // singleton inequality t_m >= EarlyRC[m], then average by cmax.
    double wct = 0.0;
    for (int m = 0; m < numBr; ++m) {
        OpId opM = sb.branches()[std::size_t(m)];
        double w = sb.exitProb(opM);
        double padded = sums[std::size_t(m)] +
                        double(cmax - counts[std::size_t(m)]) *
                            double(earlyRC[std::size_t(opM)]);
        wct += w * (padded / double(cmax) + sb.op(opM).latency);
    }
    result.wct = wct;
    return result;
}

} // namespace balance
