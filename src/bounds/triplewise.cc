#include "bounds/triplewise.hh"

#include <algorithm>

#include "bounds/relaxation.hh"
#include "support/diagnostics.hh"

namespace balance
{

namespace
{

/** One issue-cycle candidate for a branch triple. */
struct TriplePoint
{
    int x = 0;
    int y = 0;
    int z = 0;
};

/**
 * Evaluate one grid point: RJ bound on branch k's issue with edges
 * i -> j (latency a) and j -> k (latency b) added to the subgraph
 * rooted at k. Heights compose from the per-branch heights: any path
 * using the new edges funnels through j, so
 *   HjNew[x] = max(height_j[x], height_i[x] + a)
 *   H[x]     = max(height_k[x], HjNew[x] + max(b, height_k[j])).
 */
TriplePoint
evalTriple(const GraphContext &ctx, const MachineModel &machine,
           const std::vector<int> &earlyRC,
           const std::vector<int> &lateRCk, OpId i, OpId j, OpId k,
           int bi, int bj, int bk, int a, int b, BoundCounters *counters)
{
    const std::vector<int> &heightI = ctx.heightToBranch(bi);
    const std::vector<int> &heightJ = ctx.heightToBranch(bj);
    const std::vector<int> &heightK = ctx.heightToBranch(bk);
    int ei = earlyRC[std::size_t(i)];
    int ej = earlyRC[std::size_t(j)];
    int ek = earlyRC[std::size_t(k)];

    int jToK = std::max(b, heightK[std::size_t(j)]);

    auto augHeight = [&](OpId x) {
        int h = heightK[std::size_t(x)];
        int hj = heightJ[std::size_t(x)];
        int hi = heightI[std::size_t(x)];
        int hjNew = hj;
        if (hi >= 0)
            hjNew = std::max(hjNew, hi + a);
        if (hjNew >= 0)
            h = std::max(h, hjNew + jToK);
        return h;
    };

    int cp = ek;
    for (OpId x = 0; x <= k; ++x) {
        if (heightK[std::size_t(x)] < 0)
            continue;
        cp = std::max(cp, earlyRC[std::size_t(x)] + augHeight(x));
        tick(counters);
    }

    std::vector<RelaxItem> items;
    for (OpId x = 0; x <= k; ++x) {
        if (heightK[std::size_t(x)] < 0)
            continue;
        int late = cp - augHeight(x);
        if (lateRCk[std::size_t(x)] != lateUnconstrained)
            late = std::min(late, lateRCk[std::size_t(x)] + (cp - ek));
        items.push_back({x, ctx.sb().op(x).cls, earlyRC[std::size_t(x)],
                         late});
    }
    int tard = rjMaxTardiness(machine, items, counters);

    TriplePoint pt;
    pt.z = cp + std::max(0, tard);
    pt.y = std::max(pt.z - b, ej);
    pt.x = std::max(pt.y - a, ei);
    return pt;
}

} // namespace

TriplewiseResult
computeTriplewise(const GraphContext &ctx, const MachineModel &machine,
                  const std::vector<int> &earlyRC,
                  const std::vector<std::vector<int>> &lateRCPerBranch,
                  const PairwiseBounds &pw, const TriplewiseOptions &opts,
                  BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    int numBr = sb.numBranches();

    TriplewiseResult result;
    if (numBr < 3 || numBr > opts.maxBranches) {
        result.wct = pw.superblockWct();
        result.fellBack = true;
        return result;
    }

    // Per-branch accumulation for the partial Theorem 3 extension.
    std::vector<double> sums(std::size_t(numBr), 0.0);
    std::vector<long long> counts(std::size_t(numBr), 0);
    long long evals = 0;

    for (int bi = 0; bi < numBr && evals < opts.maxEvals; ++bi) {
        for (int bj = bi + 1; bj < numBr && evals < opts.maxEvals; ++bj) {
            for (int bk = bj + 1; bk < numBr && evals < opts.maxEvals;
                 ++bk) {
                OpId i = sb.branches()[std::size_t(bi)];
                OpId j = sb.branches()[std::size_t(bj)];
                OpId k = sb.branches()[std::size_t(bk)];
                double wi = sb.exitProb(i);
                double wj = sb.exitProb(j);
                double wk = sb.exitProb(k);
                int ei = earlyRC[std::size_t(i)];
                int ej = earlyRC[std::size_t(j)];
                int ek = earlyRC[std::size_t(k)];
                const std::vector<int> &lateRCk =
                    lateRCPerBranch[std::size_t(bk)];

                int aMin = sb.op(i).latency;
                int bMin = sb.op(j).latency;
                // Unlike the pairwise case, Theorem 2's termination
                // property does not transfer to the i-coordinate of
                // a triple (x derives from the k-anchored bound), so
                // the a-sweep may need to reach past EarlyRC[j] + 1;
                // the boundary column below keeps any cap sound.
                int aCap = std::min(ek + 1, aMin + opts.maxLatRange);
                int bCap = std::min(ek + 1, bMin + opts.maxLatRange);

                TriplePoint best;
                bool haveBest = false;
                auto record = [&](TriplePoint pt) {
                    double cost = wi * pt.x + wj * pt.y + wk * pt.z;
                    if (!haveBest ||
                        cost < wi * best.x + wj * best.y + wk * best.z) {
                        best = pt;
                        haveBest = true;
                    }
                };

                for (int a = aMin; a <= aCap; ++a) {
                    bool columnAllXAtFloor = true;
                    int yFloor = std::max(ej, ei + a);
                    bool innerBroke = false;
                    TriplePoint last{};
                    for (int b = bMin; b <= bCap; ++b) {
                        TriplePoint pt =
                            evalTriple(ctx, machine, earlyRC, lateRCk, i,
                                       j, k, bi, bj, bk, a, b, counters);
                        ++evals;
                        // Boundary column: relax coordinates to the
                        // individual bounds so separations beyond the
                        // sweep stay covered (sound: only lowers).
                        if (a == aCap) {
                            pt.x = ei;
                            pt.y = ej;
                        }
                        record(pt);
                        last = pt;
                        if (pt.x != ei)
                            columnAllXAtFloor = false;
                        // Once both x and y sit at their floors for
                        // this column, larger b only raises z:
                        // schedules with larger separations are
                        // dominated by this candidate.
                        if (pt.x == ei && pt.y <= yFloor) {
                            innerBroke = true;
                            break;
                        }
                        if (evals >= opts.maxEvals)
                            break;
                    }
                    if (!innerBroke) {
                        // Capped fallback covering separations past
                        // bCap at this exact a.
                        TriplePoint capped{ei, yFloor, last.z};
                        if (a == aCap)
                            capped.y = ej;
                        record(capped);
                    }
                    if (columnAllXAtFloor)
                        break;
                    if (evals >= opts.maxEvals)
                        break;
                }

                if (haveBest) {
                    sums[std::size_t(bi)] += best.x;
                    sums[std::size_t(bj)] += best.y;
                    sums[std::size_t(bk)] += best.z;
                    ++counts[std::size_t(bi)];
                    ++counts[std::size_t(bj)];
                    ++counts[std::size_t(bk)];
                    ++result.triplesEvaluated;
                }
            }
        }
    }

    long long cmax = *std::max_element(counts.begin(), counts.end());
    if (cmax == 0) {
        result.wct = pw.superblockWct();
        result.fellBack = true;
        return result;
    }

    // Partial Theorem 3: pad branches with fewer triples using the
    // singleton inequality t_m >= EarlyRC[m], then average by cmax.
    double wct = 0.0;
    for (int m = 0; m < numBr; ++m) {
        OpId opM = sb.branches()[std::size_t(m)];
        double w = sb.exitProb(opM);
        double padded = sums[std::size_t(m)] +
                        double(cmax - counts[std::size_t(m)]) *
                            double(earlyRC[std::size_t(opM)]);
        wct += w * (padded / double(cmax) + sb.op(opM).latency);
    }
    result.wct = wct;
    return result;
}

} // namespace balance
