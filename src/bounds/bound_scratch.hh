/**
 * @file
 * Reusable working storage for the bound engine.
 *
 * Every resource-aware bound bottoms out in the Rim & Jain greedy
 * relaxation, and the Pairwise/Triplewise sweeps run it thousands of
 * times per superblock. A BoundScratch bundles the buffers those
 * inner loops need — the RelaxTable placement structure, the
 * relaxation item array, the late-bucket histogram, the composed
 * late-key buffer, and a bump arena for sweep skeletons — so the
 * steady state performs no heap allocations at all.
 *
 * Ownership rule: one BoundScratch per worker, created next to the
 * GraphContext for the superblock being evaluated and never shared
 * across threads. Reuse across superblocks on the same machine model
 * is fine (buffers only ever grow to the high-water mark).
 *
 * Reusing the scratch changes no observable result: the (late,
 * early, op) relaxation order is a strict total order, so bound
 * values are bitwise identical to the naive engine
 * (bounds/reference.hh), and loop-trip accounting is untouched
 * because buffer management never ticks. The golden-equivalence test
 * in tests/bounds/ pins both properties.
 */

#ifndef BALANCE_BOUNDS_BOUND_SCRATCH_HH
#define BALANCE_BOUNDS_BOUND_SCRATCH_HH

#include <cstdint>
#include <vector>

#include "bounds/relaxation.hh"
#include "machine/machine_model.hh"
#include "support/arena.hh"

namespace balance
{

/**
 * Plain counters the sweep caches tick while a BoundScratch is in
 * use. Observational only: nothing in the engine reads them back, so
 * results are identical whether anyone harvests them or not. Owned by
 * the scratch (one worker), hence non-atomic; callers fold them into
 * the global MetricRegistry during serial reduction.
 */
struct BoundEngineStats
{
    long long pairSkeletonHits = 0;   //!< pair skeleton cache reuses
    long long pairSkeletonMisses = 0; //!< pair skeleton lazy builds
    long long tripleSkeletonHits = 0;   //!< triple skeleton reuses
    long long tripleSkeletonMisses = 0; //!< triple skeleton builds
};

/** Per-worker scratch for the bound engine (see file comment). */
struct BoundScratch
{
    /** @param machine The model all relaxations will run against. */
    explicit BoundScratch(const MachineModel &machine) : table(machine) {}

    /** The scratch keeps a pointer: temporaries are a bug. */
    explicit BoundScratch(MachineModel &&) = delete;

    /** Placement table reused by every relaxation. */
    RelaxTable table;
    /** Bind-scoped skeleton storage for the sweep caches. */
    ScratchArena arena;
    /** Relaxation items in greedy order. */
    std::vector<RelaxItem> items;
    /**
     * Member-index permutation in greedy order — the SoA form the
     * sweep caches feed rjMaxTardinessPermuted, scattering 4-byte
     * indices instead of 16-byte RelaxItems.
     */
    std::vector<std::int32_t> perm;
    /** Late-bucket histogram / start offsets for the stable repair. */
    std::vector<int> counts;
    /**
     * Relative late keys per skeleton member, min(-H[x], relLate[x]);
     * the member's late time is cp + key. Filled by the sweep caches'
     * composition pass, consumed by SinkSkeleton::relax.
     */
    std::vector<int> keys;
    /** Cache hit/miss tallies for the sweep skeletons. */
    BoundEngineStats stats;
};

} // namespace balance

#endif // BALANCE_BOUNDS_BOUND_SCRATCH_HH
