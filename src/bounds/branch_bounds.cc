#include "bounds/branch_bounds.hh"

#include <algorithm>

#include "support/diagnostics.hh"
#include "support/perf_counters.hh"

namespace balance
{

std::vector<int>
cpEarly(const GraphContext &ctx)
{
    const Superblock &sb = ctx.sb();
    std::vector<int> out;
    out.reserve(std::size_t(sb.numBranches()));
    for (OpId b : sb.branches())
        out.push_back(ctx.earlyDC()[std::size_t(b)]);
    return out;
}

std::vector<int>
huEarly(const GraphContext &ctx, const MachineModel &machine,
        BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    std::vector<int> out;
    out.reserve(std::size_t(sb.numBranches()));

    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        OpId b = sb.branches()[std::size_t(bi)];
        int anchor = ctx.earlyDC()[std::size_t(b)];
        const std::vector<int> &height = ctx.heightToBranch(bi);

        // Collect late times per resource pool over closure(b).
        std::vector<std::vector<int>> lateByPool(
            std::size_t(machine.numResources()));
        for (OpId v = 0; v <= b; ++v) {
            if (height[std::size_t(v)] < 0)
                continue;
            int late = anchor - height[std::size_t(v)];
            ResourceId r = machine.poolOf(sb.op(v).cls);
            lateByPool[std::size_t(r)].push_back(late);
            tick(counters);
        }

        // For each pool, sweep deadlines in increasing order: the
        // k-th earliest deadline c needs k issue slots in cycles
        // [0, c], i.e. width * (c + 1) slots available.
        int delay = 0;
        for (int r = 0; r < machine.numResources(); ++r) {
            auto &lates = lateByPool[std::size_t(r)];
            std::sort(lates.begin(), lates.end());
            int width = machine.width(r);
            for (std::size_t k = 0; k < lates.size(); ++k) {
                long long need = (long long)(k) + 1;
                long long avail = (long long)(width) * (lates[k] + 1);
                if (need > avail) {
                    int d = int((need - avail + width - 1) / width);
                    delay = std::max(delay, d);
                }
                tick(counters);
            }
        }
        out.push_back(anchor + delay);
    }
    return out;
}

std::vector<int>
rjEarly(const GraphContext &ctx, const MachineModel &machine,
        BoundCounters *counters)
{
    PerfRegion perf(PerfPhase::RjRelax);
    const Superblock &sb = ctx.sb();
    std::vector<int> out;
    out.reserve(std::size_t(sb.numBranches()));

    std::vector<RelaxItem> items;
    RelaxTable table(machine);
    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        OpId b = sb.branches()[std::size_t(bi)];
        int anchor = ctx.earlyDC()[std::size_t(b)];
        const std::vector<int> &height = ctx.heightToBranch(bi);

        items.clear();
        for (OpId v = 0; v <= b; ++v) {
            if (height[std::size_t(v)] < 0)
                continue;
            items.push_back({v, sb.op(v).cls,
                             ctx.earlyDC()[std::size_t(v)],
                             anchor - height[std::size_t(v)]});
            tick(counters);
        }
        int tard = rjMaxTardiness(machine, items, table, counters);
        out.push_back(composeBound(anchor, tard));
    }
    return out;
}

std::vector<int>
lcEarlyRC(const Dag &dag, const MachineModel &machine,
          const LcOptions &opts, BoundCounters *counters)
{
    PerfRegion perf(PerfPhase::RjRelax);
    int n = dag.n();
    std::vector<int> earlyRC(std::size_t(n), 0);
    std::vector<int> height(std::size_t(n), -1);
    std::vector<RelaxItem> items;
    RelaxTable table(machine);

    for (int v = 0; v < n; ++v) {
        auto preds = dag.preds(v);
        if (preds.empty()) {
            earlyRC[std::size_t(v)] = 0;
            continue;
        }

        int depEarly = 0;
        for (const Adjacent &e : preds) {
            depEarly = std::max(depEarly,
                                earlyRC[std::size_t(e.op)] + e.latency);
        }

        // Theorem 1 (trivial bound recursion): with a unique direct
        // predecessor and a positive latency, the relaxation for v is
        // the predecessor's relaxation with v appended one-or-more
        // cycles later, where a unit is always free.
        if (opts.useTheorem1 && preds.size() == 1 &&
            preds[0].latency > 0) {
            earlyRC[std::size_t(v)] = depEarly;
            tick(counters);
            continue;
        }

        // Heights within the closure of v (nodes <= v only).
        std::fill(height.begin(), height.begin() + v + 1, -1);
        height[std::size_t(v)] = 0;
        for (int x = v; x >= 0; --x) {
            if (height[std::size_t(x)] < 0)
                continue;
            for (const Adjacent &e : dag.preds(x)) {
                height[std::size_t(e.op)] =
                    std::max(height[std::size_t(e.op)],
                             height[std::size_t(x)] + e.latency);
                tick(counters);
            }
        }

        // Critical path to v with EarlyRC as early times.
        int cp = depEarly;
        for (int x = 0; x < v; ++x) {
            if (height[std::size_t(x)] >= 0) {
                cp = std::max(cp, earlyRC[std::size_t(x)] +
                                      height[std::size_t(x)]);
            }
            tick(counters);
        }

        items.clear();
        for (int x = 0; x <= v; ++x) {
            if (height[std::size_t(x)] < 0)
                continue;
            int early = x == v ? depEarly : earlyRC[std::size_t(x)];
            items.push_back({OpId(x), dag.cls[std::size_t(x)], early,
                             cp - height[std::size_t(x)]});
        }
        int tard = rjMaxTardiness(machine, items, table, counters);
        earlyRC[std::size_t(v)] =
            std::max(depEarly, composeBound(cp, tard));
    }
    return earlyRC;
}

std::vector<int>
lcEarlyRCForSuperblock(const GraphContext &ctx, const MachineModel &machine,
                       const LcOptions &opts, BoundCounters *counters)
{
    return lcEarlyRC(Dag::fromSuperblock(ctx.sb()), machine, opts,
                     counters);
}

std::vector<int>
lateRCFor(const GraphContext &ctx, const MachineModel &machine,
          int branchIdx, const std::vector<int> &earlyRC,
          BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    OpId b = sb.branches()[std::size_t(branchIdx)];

    const GraphContext::ReversedClosure &rev =
        ctx.reversedClosure(branchIdx);
    std::vector<int> revEarly =
        lcEarlyRC(rev.dag, machine, {}, counters);

    std::vector<int> lateRC(std::size_t(sb.numOps()), lateUnconstrained);
    int anchor = earlyRC[std::size_t(b)];
    for (std::size_t nid = 0; nid < rev.newToOld.size(); ++nid) {
        lateRC[std::size_t(rev.newToOld[nid])] = anchor - revEarly[nid];
    }
    return lateRC;
}

} // namespace balance
