#include "bounds/pairwise.hh"

#include <algorithm>

#include "bounds/relaxation.hh"
#include "support/diagnostics.hh"

namespace balance
{

namespace
{

/**
 * Evaluate one sweep point: the RJ bound on branch j's issue when an
 * edge i -> j with latency l is added to the subgraph rooted at j.
 *
 * The heights to j in the augmented graph compose from the
 * precomputed heights: any path through the new edge reaches i
 * first, so H[x] = max(height_j[x], height_i[x] + l).
 */
PairPoint
evalPair(const GraphContext &ctx, const MachineModel &machine,
         const std::vector<int> &earlyRC, const std::vector<int> &lateRCj,
         OpId i, OpId j, int bi, int bj, int latency,
         BoundCounters *counters)
{
    const std::vector<int> &heightI = ctx.heightToBranch(bi);
    const std::vector<int> &heightJ = ctx.heightToBranch(bj);
    int ei = earlyRC[std::size_t(i)];
    int ej = earlyRC[std::size_t(j)];

    // Pass 1: critical path to j in the augmented graph.
    int cp = ej;
    for (OpId x = 0; x <= j; ++x) {
        int hj = heightJ[std::size_t(x)];
        if (hj < 0)
            continue;
        int h = hj;
        int hi = heightI[std::size_t(x)];
        if (hi >= 0)
            h = std::max(h, hi + latency);
        cp = std::max(cp, earlyRC[std::size_t(x)] + h);
        tick(counters);
    }

    // Pass 2: relaxation items with LateRC-tightened windows. LateRC
    // was anchored at j issuing in EarlyRC[j]; shift by cp - ej.
    std::vector<RelaxItem> items;
    for (OpId x = 0; x <= j; ++x) {
        int hj = heightJ[std::size_t(x)];
        if (hj < 0)
            continue;
        int h = hj;
        int hi = heightI[std::size_t(x)];
        if (hi >= 0)
            h = std::max(h, hi + latency);
        int late = cp - h;
        if (lateRCj[std::size_t(x)] != lateUnconstrained)
            late = std::min(late, lateRCj[std::size_t(x)] + (cp - ej));
        items.push_back({x, ctx.sb().op(x).cls, earlyRC[std::size_t(x)],
                         late});
    }
    int tard = rjMaxTardiness(machine, items, counters);

    PairPoint pt;
    pt.y = cp + std::max(0, tard);
    // Clamping x up to EarlyRC[i] is required for the sweep's
    // early-termination coverage argument (see DESIGN.md).
    pt.x = std::max(pt.y - latency, ei);
    return pt;
}

} // namespace

PairPoint
computePairBound(const GraphContext &ctx, const MachineModel &machine,
                 const std::vector<int> &earlyRC,
                 const std::vector<int> &lateRCj, int bi, int bj,
                 double wi, double wj, const PairwiseOptions &opts,
                 BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    bsAssert(bi >= 0 && bj > bi && bj < sb.numBranches(),
             "bad branch pair (", bi, ", ", bj, ")");
    OpId i = sb.branches()[std::size_t(bi)];
    OpId j = sb.branches()[std::size_t(bj)];
    int ei = earlyRC[std::size_t(i)];
    int ej = earlyRC[std::size_t(j)];

    // The considered latencies are never below branch i's latency
    // (branches stay ordered) nor above EarlyRC[j] + 1 (Theorem 2).
    int lMin = sb.op(i).latency;
    int lMax = ej + 1;

    std::vector<PairPoint> recorded;
    auto eval = [&](int l) {
        PairPoint pt = evalPair(ctx, machine, earlyRC, lateRCj, i, j, bi,
                                bj, l, counters);
        recorded.push_back(pt);
        return pt;
    };

    int l0 = std::clamp(ej - ei, lMin, lMax);
    PairPoint first = eval(l0);

    if (first.x == ei && first.y == ej) {
        // Both branches achieve their individual bounds at once:
        // there is no tradeoff and no better pair exists.
        return first;
    }

    // Walk down until j reaches its individual bound.
    if (first.y != ej) {
        int steps = 0;
        bool reached = false;
        for (int l = l0 - 1; l >= lMin; --l) {
            if (++steps > opts.maxSweepSteps)
                break;
            PairPoint pt = eval(l);
            if (pt.y == ej) {
                reached = true;
                break;
            }
        }
        if (!reached && l0 - 1 >= lMin && steps > opts.maxSweepSteps) {
            // Truncated sweep: separations below the last evaluated
            // point are no longer covered by the termination
            // argument; fall back to the always-valid naive point.
            recorded.push_back({ei, ej});
        }
    }

    // Walk up until i reaches its individual bound.
    {
        int steps = 0;
        bool reached = first.x == ei;
        if (!reached) {
            for (int l = l0 + 1; l <= lMax; ++l) {
                if (++steps > opts.maxSweepSteps)
                    break;
                PairPoint pt = eval(l);
                if (pt.x == ei) {
                    reached = true;
                    break;
                }
            }
        }
        if (!reached) {
            // Separations above the last evaluated point: any such
            // schedule has x' >= EarlyRC[i] and y' >= x' + l >
            // EarlyRC[i] + lMax, so this safety pair is dominated.
            recorded.push_back({ei, std::max(ej, ei + lMax)});
        }
    }

    PairPoint best = recorded.front();
    double bestCost = wi * best.x + wj * best.y;
    for (const PairPoint &pt : recorded) {
        double cost = wi * pt.x + wj * pt.y;
        if (cost < bestCost) {
            bestCost = cost;
            best = pt;
        }
    }
    return best;
}

PairwiseBounds::PairwiseBounds(
    const GraphContext &ctx, const MachineModel &machine,
    const std::vector<int> &earlyRC,
    const std::vector<std::vector<int>> &lateRCPerBranch,
    const PairwiseOptions &opts, BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    b = sb.numBranches();
    bsAssert(int(lateRCPerBranch.size()) == b,
             "need one LateRC vector per branch");

    pairs.resize(std::size_t(b) * std::size_t(b));
    for (int bi = 0; bi < b; ++bi) {
        OpId i = sb.branches()[std::size_t(bi)];
        double wi = sb.exitProb(i);
        for (int bj = bi + 1; bj < b; ++bj) {
            OpId j = sb.branches()[std::size_t(bj)];
            double wj = sb.exitProb(j);
            pairs[std::size_t(bi) * std::size_t(b) + std::size_t(bj)] =
                computePairBound(ctx, machine, earlyRC,
                                 lateRCPerBranch[std::size_t(bj)], bi, bj,
                                 wi, wj, opts, counters);
        }
    }

    // Theorem 3: average each branch's value over the pairs that
    // contain it, then weight by exit probability and add the branch
    // latency to reach completion times.
    wct = 0.0;
    for (int k = 0; k < b; ++k) {
        OpId opK = sb.branches()[std::size_t(k)];
        double w = sb.exitProb(opK);
        double avg;
        if (b == 1) {
            avg = double(earlyRC[std::size_t(opK)]);
        } else {
            double sum = 0.0;
            for (int other = 0; other < b; ++other) {
                if (other == k)
                    continue;
                sum += other > k ? double(pair(k, other).x)
                                 : double(pair(other, k).y);
            }
            avg = sum / double(b - 1);
        }
        wct += w * (avg + sb.op(opK).latency);
    }
}

const PairPoint &
PairwiseBounds::pair(int bi, int bj) const
{
    bsAssert(bi >= 0 && bj > bi && bj < b, "bad pair index (", bi, ", ",
             bj, ")");
    return pairs[std::size_t(bi) * std::size_t(b) + std::size_t(bj)];
}

} // namespace balance
