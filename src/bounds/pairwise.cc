#include "bounds/pairwise.hh"

#include <algorithm>
#include <memory>

#include "bounds/bound_scratch.hh"
#include "bounds/pair_sweep.hh"
#include "bounds/relaxation.hh"
#include "support/diagnostics.hh"
#include "support/perf_counters.hh"

namespace balance
{

PairPoint
computePairBound(const GraphContext &ctx, const MachineModel &machine,
                 const std::vector<int> &earlyRC,
                 const std::vector<int> &lateRCj, int bi, int bj,
                 double wi, double wj, const PairwiseOptions &opts,
                 BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    bsAssert(bi >= 0 && bj > bi && bj < sb.numBranches(),
             "bad branch pair (", bi, ", ", bj, ")");

    // Single-pair convenience entry: stage the one LateRC vector the
    // engine will read and run the cached-sweep driver.
    std::vector<std::vector<int>> lateRCPerBranch(
        std::size_t(sb.numBranches()));
    lateRCPerBranch[std::size_t(bj)] = lateRCj;

    BoundScratch scratch(machine);
    PairSweepCache cache(ctx, machine, earlyRC, lateRCPerBranch, scratch);
    cache.bindSink(bj);
    return computePairBound(cache, bi, wi, wj, opts, counters);
}

PairwiseBounds::PairwiseBounds(
    const GraphContext &ctx, const MachineModel &machine,
    const std::vector<int> &earlyRC,
    const std::vector<std::vector<int>> &lateRCPerBranch,
    const PairwiseOptions &opts, BoundCounters *counters,
    BoundScratch *scratch)
{
    PerfRegion perf(PerfPhase::PairSweep);
    const Superblock &sb = ctx.sb();
    b = sb.numBranches();
    bsAssert(int(lateRCPerBranch.size()) == b,
             "need one LateRC vector per branch");

    std::unique_ptr<BoundScratch> owned;
    if (!scratch) {
        owned = std::make_unique<BoundScratch>(machine);
        scratch = owned.get();
    }
    PairSweepCache cache(ctx, machine, earlyRC, lateRCPerBranch,
                         *scratch);

    // Sink-major order so each sink's skeleton and LateRC gathers are
    // built once and reused by every source branch. Pairs are
    // independent, so the visit order does not affect any value, and
    // counters only ever accumulate (sums are order-invariant).
    pairs.resize(std::size_t(b) * std::size_t(b));
    for (int bj = 1; bj < b; ++bj) {
        OpId j = sb.branches()[std::size_t(bj)];
        double wj = sb.exitProb(j);
        cache.bindSink(bj);
        for (int bi = 0; bi < bj; ++bi) {
            OpId i = sb.branches()[std::size_t(bi)];
            double wi = sb.exitProb(i);
            pairs[std::size_t(bi) * std::size_t(b) + std::size_t(bj)] =
                computePairBound(cache, bi, wi, wj, opts, counters);
        }
    }

    // Theorem 3: average each branch's value over the pairs that
    // contain it, then weight by exit probability and add the branch
    // latency to reach completion times.
    wct = 0.0;
    for (int k = 0; k < b; ++k) {
        OpId opK = sb.branches()[std::size_t(k)];
        double w = sb.exitProb(opK);
        double avg;
        if (b == 1) {
            avg = double(earlyRC[std::size_t(opK)]);
        } else {
            double sum = 0.0;
            for (int other = 0; other < b; ++other) {
                if (other == k)
                    continue;
                sum += other > k ? double(pair(k, other).x)
                                 : double(pair(other, k).y);
            }
            avg = sum / double(b - 1);
        }
        wct += w * (avg + sb.op(opK).latency);
    }
}

const PairPoint &
PairwiseBounds::pair(int bi, int bj) const
{
    bsAssert(bi >= 0 && bj > bi && bj < b, "bad pair index (", bi, ", ",
             bj, ")");
    return pairs[std::size_t(bi) * std::size_t(b) + std::size_t(bj)];
}

} // namespace balance
