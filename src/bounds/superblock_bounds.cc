#include "bounds/superblock_bounds.hh"

#include <algorithm>
#include <memory>

#include "bounds/bound_scratch.hh"
#include "support/diagnostics.hh"

namespace balance
{

double
wctFromBranchEarly(const Superblock &sb,
                   const std::vector<int> &earlyPerBranch)
{
    bsAssert(int(earlyPerBranch.size()) == sb.numBranches(),
             "per-branch bound size mismatch");
    double wct = 0.0;
    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        OpId b = sb.branches()[std::size_t(bi)];
        wct += sb.exitProb(b) *
               (earlyPerBranch[std::size_t(bi)] + sb.op(b).latency);
    }
    return wct;
}

double
WctBounds::tightest() const
{
    return std::max({cp, hu, rj, lc, pw, tw});
}

BoundsToolkit::BoundsToolkit(const GraphContext &ctx,
                             const MachineModel &machine,
                             const BoundConfig &config,
                             BoundCounterSet *counters,
                             BoundScratch *scratch)
    : context(&ctx)
{
    earlyRCPerOp = lcEarlyRCForSuperblock(
        ctx, machine, config.lc, counters ? &counters->lc : nullptr);

    const Superblock &sb = ctx.sb();
    lateRCPerBranch.reserve(std::size_t(sb.numBranches()));
    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        lateRCPerBranch.push_back(
            lateRCFor(ctx, machine, bi, earlyRCPerOp,
                      counters ? &counters->lcReverse : nullptr));
    }

    if (config.computePairwise) {
        pw = std::make_unique<PairwiseBounds>(
            ctx, machine, earlyRCPerOp, lateRCPerBranch, config.pairwise,
            counters ? &counters->pw : nullptr, scratch);
    }
}

const std::vector<int> &
BoundsToolkit::lateRC(int branchIdx) const
{
    bsAssert(branchIdx >= 0 &&
                 branchIdx < int(lateRCPerBranch.size()),
             "branch index out of range: ", branchIdx);
    return lateRCPerBranch[std::size_t(branchIdx)];
}

WctBounds
computeWctBounds(const GraphContext &ctx, const MachineModel &machine,
                 const BoundConfig &config, BoundCounterSet *counters,
                 BoundScratch *scratch)
{
    const Superblock &sb = ctx.sb();

    std::unique_ptr<BoundScratch> owned;
    if (!scratch) {
        owned = std::make_unique<BoundScratch>(machine);
        scratch = owned.get();
    }

    WctBounds out;
    out.cp = wctFromBranchEarly(sb, cpEarly(ctx));
    out.hu = wctFromBranchEarly(
        sb, huEarly(ctx, machine, counters ? &counters->hu : nullptr));
    out.rj = wctFromBranchEarly(
        sb, rjEarly(ctx, machine, counters ? &counters->rj : nullptr));

    BoundsToolkit toolkit(ctx, machine, config, counters, scratch);

    std::vector<int> lcBranches;
    lcBranches.reserve(std::size_t(sb.numBranches()));
    for (OpId b : sb.branches())
        lcBranches.push_back(toolkit.earlyRC()[std::size_t(b)]);
    out.lc = wctFromBranchEarly(sb, lcBranches);

    if (config.computePairwise && toolkit.pairwise()) {
        // The paper's PW is never below the naive LC aggregation:
        // every pair value is clamped to the EarlyRC floor.
        out.pw = toolkit.pairwise()->superblockWct();
        if (config.computeTriplewise) {
            TriplewiseResult tw = computeTriplewise(
                ctx, machine, toolkit.earlyRC(), toolkit.lateRCAll(),
                *toolkit.pairwise(), config.triplewise,
                counters ? &counters->tw : nullptr, scratch);
            out.tw = tw.wct;
        } else {
            out.tw = out.pw;
        }
    } else {
        out.pw = out.lc;
        out.tw = out.lc;
    }
    return out;
}

} // namespace balance
