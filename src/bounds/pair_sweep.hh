/**
 * @file
 * The incremental sweep engine behind the Pairwise and Triplewise
 * bounds.
 *
 * Every sweep point (one forced-separation latency for a pair, one
 * (a, b) grid point for a triple) solves a Rim & Jain relaxation
 * over the same skeleton: the operations with a path to the sink
 * branch. The naive engine (bounds/reference.hh) rebuilds that world
 * from scratch per point — re-scans all ops below the sink, pushes a
 * fresh item vector, std::sorts it, and constructs a new reservation
 * table. This engine exploits what stays fixed across the sweep:
 *
 *  - Per sink branch, the skeleton (members, classes, EarlyRC,
 *    heights to the sink, LateRC slack) is built once and cached for
 *    the lifetime of the cache object (SinkSkeleton).
 *  - Per source branch, the heights to the source are gathered once
 *    into a dense arena span (bindPair / bindTriple).
 *  - Per sweep point, only the composed heights change. The greedy's
 *    (late, early, op) order is repaired with one stable bucket pass
 *    over a precomputed (early, op) permutation instead of a full
 *    sort: late times are bucketed by value and members scatter in
 *    (early, op) order, which is exactly a stable counting sort and
 *    therefore yields the unique (late, early, op) sequence.
 *  - The relaxation places items through the caller's RelaxTable
 *    (path-compressed next-free-cycle pointers, O(1) epoch reset)
 *    instead of probing a freshly constructed reservation table.
 *
 * Because (late, early, op) is a strict total order, the repaired
 * sequence equals what std::sort produces, so bound values are
 * bitwise identical to the naive engine and loop-trip accounting
 * (Table 2) is unchanged — ordering work never ticks, in either
 * engine. tests/bounds/bound_engine_golden_test.cc pins this.
 */

#ifndef BALANCE_BOUNDS_PAIR_SWEEP_HH
#define BALANCE_BOUNDS_PAIR_SWEEP_HH

#include <memory>
#include <span>
#include <vector>

#include "bounds/bound_scratch.hh"
#include "bounds/counters.hh"
#include "bounds/pairwise.hh"
#include "graph/analysis.hh"
#include "machine/machine_model.hh"

namespace balance
{

/** One issue-cycle candidate for a branch triple. */
struct TriplePoint
{
    int x = 0;
    int y = 0;
    int z = 0;
};

namespace detail
{

/**
 * Cached per-sink-branch relaxation skeleton: everything about the
 * subgraph rooted at the sink that is invariant across sweep points
 * and source branches, plus the stable-bucket relaxation step.
 */
struct SinkSkeleton
{
    int n = 0;            //!< number of members
    OpId sink = invalidOp;
    int sinkEarly = 0;    //!< EarlyRC of the sink
    const OpId *ops = nullptr; //!< members, ascending (ctx-owned)
    std::vector<OpClass> cls;
    std::vector<int> early;   //!< EarlyRC per member
    std::vector<int> hSink;   //!< height to the sink per member
    /**
     * LateRC slack relative to the sink: LateRC[x] - EarlyRC[sink],
     * or lateUnconstrained when LateRC does not constrain x. The
     * tightened late time at critical path cp is then
     * cp + min(-H[x], relLate[x]) for every sweep point.
     */
    std::vector<int> relLate;
    /** Member indices in (EarlyRC, op) order — the tie-break tail. */
    std::vector<int> orderByEarly;

    /** Build for @p branchIdx using @p lateRC (lateRCFor output). */
    void build(const GraphContext &ctx, const std::vector<int> &earlyRC,
               const std::vector<int> &lateRC, int branchIdx);

    /**
     * Solve the relaxation for composed late keys scratch.keys
     * (callers fill keys[m] = min(-H[m], relLate[m]) along with
     * their min/max and the composed @p cp during the composition
     * pass, ticking once per member exactly like the naive
     * critical-path pass; the member's late time is cp + key).
     *
     * @return max tardiness, as rjMaxTardiness.
     */
    int relax(const MachineModel &machine, BoundScratch &scratch, int cp,
              int minKey, int maxKey, BoundCounters *counters) const;
};

} // namespace detail

/**
 * Sweep engine for the Pairwise bound. Bind a sink branch, then a
 * source branch, then evaluate separation latencies; skeletons are
 * cached per sink, so any bind order is cheap.
 */
class PairSweepCache
{
  public:
    /**
     * @param ctx Analysis context for the superblock.
     * @param machine Resource widths (must match @p scratch).
     * @param earlyRC EarlyRC for every operation.
     * @param lateRCPerBranch LateRC vectors, one per branch.
     * @param scratch Worker-private working storage.
     */
    PairSweepCache(const GraphContext &ctx, const MachineModel &machine,
                   const std::vector<int> &earlyRC,
                   const std::vector<std::vector<int>> &lateRCPerBranch,
                   BoundScratch &scratch);

    /** Select the later branch @p bj (the relaxation sink). */
    void bindSink(int bj);

    /** Select the earlier branch @p bi < bound sink. */
    void bindPair(int bi);

    /** @return EarlyRC of the bound source branch. */
    int ei() const { return eiVal; }
    /** @return EarlyRC of the bound sink branch. */
    int ej() const { return ejVal; }
    /** @return the smallest separation to consider (src latency). */
    int lMin() const { return lMinVal; }
    /** @return the largest separation worth considering (Thm 2). */
    int lMax() const { return lMaxVal; }

    /** Evaluate one separation latency for the bound (bi, bj). */
    PairPoint eval(int latency, BoundCounters *counters);

    /** Sweep-candidate buffer for the sweep driver. */
    std::vector<PairPoint> recorded;

  private:
    const detail::SinkSkeleton &skeletonFor(int branchIdx);

    const GraphContext &ctx;
    const MachineModel &machine;
    const std::vector<int> &earlyRC;
    const std::vector<std::vector<int>> &lateRCPerBranch;
    BoundScratch &scratch;

    std::vector<std::unique_ptr<detail::SinkSkeleton>> perBranch;
    const detail::SinkSkeleton *sk = nullptr;
    std::span<int> hiBuf; //!< heights to the source, per member

    int eiVal = 0;
    int ejVal = 0;
    int lMinVal = 0;
    int lMaxVal = 0;
};

/**
 * Run the Figure 5 sweep for the pair (bi, sink) on a cache whose
 * sink is already bound. Equivalent to computePairBound of
 * pairwise.hh (which wraps this), but reuses the cache's skeletons
 * across calls.
 */
PairPoint computePairBound(PairSweepCache &cache, int bi, double wi,
                           double wj, const PairwiseOptions &opts,
                           BoundCounters *counters);

/**
 * Sweep engine for the Triplewise bound: same skeleton machinery
 * with two gathered height arrays and the j -> k funnel composition.
 */
class TripleSweepCache
{
  public:
    /** See PairSweepCache; parameters are identical. */
    TripleSweepCache(const GraphContext &ctx, const MachineModel &machine,
                     const std::vector<int> &earlyRC,
                     const std::vector<std::vector<int>> &lateRCPerBranch,
                     BoundScratch &scratch);

    /** Select the last branch @p bk (the relaxation sink). */
    void bindSink(int bk);

    /** Select the earlier branches @p bi < @p bj < bound sink. */
    void bindTriple(int bi, int bj);

    /** @return EarlyRC of branch i / j / k of the bound triple. */
    int ei() const { return eiVal; }
    int ej() const { return ejVal; }
    int ek() const { return ekVal; }

    /** Evaluate one (a, b) separation grid point. */
    TriplePoint eval(int a, int b, BoundCounters *counters);

  private:
    const detail::SinkSkeleton &skeletonFor(int branchIdx);

    const GraphContext &ctx;
    const MachineModel &machine;
    const std::vector<int> &earlyRC;
    const std::vector<std::vector<int>> &lateRCPerBranch;
    BoundScratch &scratch;

    std::vector<std::unique_ptr<detail::SinkSkeleton>> perBranch;
    const detail::SinkSkeleton *sk = nullptr;
    std::span<int> hiBuf; //!< heights to branch i, per member
    std::span<int> hjBuf; //!< heights to branch j, per member

    int sinkIdx = -1;
    int eiVal = 0;
    int ejVal = 0;
    int ekVal = 0;
    int hKj = -1; //!< height of branch j toward the sink k
};

} // namespace balance

#endif // BALANCE_BOUNDS_PAIR_SWEEP_HH
