#include "bounds/reference.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace balance
{

namespace reference
{

namespace
{

/**
 * Nested-vector DAG, exactly the pre-engine representation: one heap
 * allocation per node and per adjacency list. The main path moved to
 * a flat CSR Dag; this copy keeps the baseline honest.
 */
struct NaiveDag
{
    std::vector<OpClass> cls;
    std::vector<std::vector<Adjacent>> preds;
    std::vector<std::vector<Adjacent>> succs;

    int n() const { return int(cls.size()); }

    static NaiveDag
    fromSuperblock(const Superblock &sb)
    {
        NaiveDag dag;
        int v = sb.numOps();
        dag.cls.resize(std::size_t(v));
        dag.preds.resize(std::size_t(v));
        dag.succs.resize(std::size_t(v));
        for (OpId id = 0; id < v; ++id) {
            dag.cls[std::size_t(id)] = sb.op(id).cls;
            auto p = sb.preds(id);
            dag.preds[std::size_t(id)].assign(p.begin(), p.end());
            auto s = sb.succs(id);
            dag.succs[std::size_t(id)].assign(s.begin(), s.end());
        }
        return dag;
    }

    static NaiveDag
    reversedClosure(const Superblock &sb, const DynBitset &nodes,
                    std::vector<OpId> *newToOld)
    {
        bsAssert(nodes.size() == std::size_t(sb.numOps()),
                 "node mask universe mismatch");

        std::vector<OpId> order = nodes.toIndices().empty()
            ? std::vector<OpId>{}
            : [&] {
                  auto idx = nodes.toIndices();
                  std::vector<OpId> ord(idx.rbegin(), idx.rend());
                  return ord;
              }();
        bsAssert(!order.empty(), "reversedClosure of empty node set");

        std::vector<int> newIdOf(std::size_t(sb.numOps()), -1);
        for (std::size_t i = 0; i < order.size(); ++i)
            newIdOf[std::size_t(order[i])] = int(i);

        NaiveDag dag;
        dag.cls.resize(order.size());
        dag.preds.resize(order.size());
        dag.succs.resize(order.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            OpId orig = order[i];
            dag.cls[i] = sb.op(orig).cls;
            for (const Adjacent &e : sb.succs(orig)) {
                int nid = newIdOf[std::size_t(e.op)];
                if (nid >= 0)
                    dag.preds[i].push_back({OpId(nid), e.latency});
            }
            for (const Adjacent &e : sb.preds(orig)) {
                int nid = newIdOf[std::size_t(e.op)];
                if (nid >= 0)
                    dag.succs[i].push_back({OpId(nid), e.latency});
            }
        }
        if (newToOld)
            *newToOld = std::move(order);
        return dag;
    }
};

std::vector<int>
naiveLcEarlyRC(const NaiveDag &dag, const MachineModel &machine,
               const LcOptions &opts, BoundCounters *counters)
{
    int n = dag.n();
    std::vector<int> earlyRC(std::size_t(n), 0);
    std::vector<int> height(std::size_t(n), -1);
    std::vector<RelaxItem> items;

    for (int v = 0; v < n; ++v) {
        const auto &preds = dag.preds[std::size_t(v)];
        if (preds.empty()) {
            earlyRC[std::size_t(v)] = 0;
            continue;
        }

        int depEarly = 0;
        for (const Adjacent &e : preds) {
            depEarly = std::max(depEarly,
                                earlyRC[std::size_t(e.op)] + e.latency);
        }

        if (opts.useTheorem1 && preds.size() == 1 &&
            preds[0].latency > 0) {
            earlyRC[std::size_t(v)] = depEarly;
            tick(counters);
            continue;
        }

        std::fill(height.begin(), height.begin() + v + 1, -1);
        height[std::size_t(v)] = 0;
        for (int x = v; x >= 0; --x) {
            if (height[std::size_t(x)] < 0)
                continue;
            for (const Adjacent &e : dag.preds[std::size_t(x)]) {
                height[std::size_t(e.op)] =
                    std::max(height[std::size_t(e.op)],
                             height[std::size_t(x)] + e.latency);
                tick(counters);
            }
        }

        int cp = depEarly;
        for (int x = 0; x < v; ++x) {
            if (height[std::size_t(x)] >= 0) {
                cp = std::max(cp, earlyRC[std::size_t(x)] +
                                      height[std::size_t(x)]);
            }
            tick(counters);
        }

        items.clear();
        for (int x = 0; x <= v; ++x) {
            if (height[std::size_t(x)] < 0)
                continue;
            int early = x == v ? depEarly : earlyRC[std::size_t(x)];
            items.push_back({OpId(x), dag.cls[std::size_t(x)], early,
                             cp - height[std::size_t(x)]});
        }
        int tard = reference::rjMaxTardiness(machine, items, counters);
        earlyRC[std::size_t(v)] =
            std::max(depEarly, composeBound(cp, tard));
    }
    return earlyRC;
}

std::vector<int>
naiveCpEarly(const GraphContext &ctx)
{
    const Superblock &sb = ctx.sb();
    std::vector<int> out;
    out.reserve(std::size_t(sb.numBranches()));
    for (OpId b : sb.branches())
        out.push_back(ctx.earlyDC()[std::size_t(b)]);
    return out;
}

std::vector<int>
naiveHuEarly(const GraphContext &ctx, const MachineModel &machine,
             BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    std::vector<int> out;
    out.reserve(std::size_t(sb.numBranches()));

    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        OpId b = sb.branches()[std::size_t(bi)];
        int anchor = ctx.earlyDC()[std::size_t(b)];
        const std::vector<int> &height = ctx.heightToBranch(bi);

        std::vector<std::vector<int>> lateByPool(
            std::size_t(machine.numResources()));
        for (OpId v = 0; v <= b; ++v) {
            if (height[std::size_t(v)] < 0)
                continue;
            int late = anchor - height[std::size_t(v)];
            ResourceId r = machine.poolOf(sb.op(v).cls);
            lateByPool[std::size_t(r)].push_back(late);
            tick(counters);
        }

        int delay = 0;
        for (int r = 0; r < machine.numResources(); ++r) {
            auto &lates = lateByPool[std::size_t(r)];
            std::sort(lates.begin(), lates.end());
            int width = machine.width(r);
            for (std::size_t k = 0; k < lates.size(); ++k) {
                long long need = (long long)(k) + 1;
                long long avail = (long long)(width) * (lates[k] + 1);
                if (need > avail) {
                    int d = int((need - avail + width - 1) / width);
                    delay = std::max(delay, d);
                }
                tick(counters);
            }
        }
        out.push_back(anchor + delay);
    }
    return out;
}

std::vector<int>
naiveRjEarly(const GraphContext &ctx, const MachineModel &machine,
             BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    std::vector<int> out;
    out.reserve(std::size_t(sb.numBranches()));

    std::vector<RelaxItem> items;
    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        OpId b = sb.branches()[std::size_t(bi)];
        int anchor = ctx.earlyDC()[std::size_t(b)];
        const std::vector<int> &height = ctx.heightToBranch(bi);

        items.clear();
        for (OpId v = 0; v <= b; ++v) {
            if (height[std::size_t(v)] < 0)
                continue;
            items.push_back({v, sb.op(v).cls,
                             ctx.earlyDC()[std::size_t(v)],
                             anchor - height[std::size_t(v)]});
            tick(counters);
        }
        int tard = reference::rjMaxTardiness(machine, items, counters);
        out.push_back(composeBound(anchor, tard));
    }
    return out;
}

double
naiveWctFromBranchEarly(const Superblock &sb,
                        const std::vector<int> &earlyPerBranch)
{
    double wct = 0.0;
    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        OpId b = sb.branches()[std::size_t(bi)];
        wct += sb.exitProb(b) *
               (earlyPerBranch[std::size_t(bi)] + sb.op(b).latency);
    }
    return wct;
}

/** One sweep point of the naive pairwise search (two full passes). */
PairPoint
evalPair(const GraphContext &ctx, const MachineModel &machine,
         const std::vector<int> &earlyRC, const std::vector<int> &lateRCj,
         OpId i, OpId j, int bi, int bj, int latency,
         BoundCounters *counters)
{
    const std::vector<int> &heightI = ctx.heightToBranch(bi);
    const std::vector<int> &heightJ = ctx.heightToBranch(bj);
    int ei = earlyRC[std::size_t(i)];
    int ej = earlyRC[std::size_t(j)];

    int cp = ej;
    for (OpId x = 0; x <= j; ++x) {
        int hj = heightJ[std::size_t(x)];
        if (hj < 0)
            continue;
        int h = hj;
        int hi = heightI[std::size_t(x)];
        if (hi >= 0)
            h = std::max(h, hi + latency);
        cp = std::max(cp, earlyRC[std::size_t(x)] + h);
        tick(counters);
    }

    std::vector<RelaxItem> items;
    for (OpId x = 0; x <= j; ++x) {
        int hj = heightJ[std::size_t(x)];
        if (hj < 0)
            continue;
        int h = hj;
        int hi = heightI[std::size_t(x)];
        if (hi >= 0)
            h = std::max(h, hi + latency);
        int late = cp - h;
        if (lateRCj[std::size_t(x)] != lateUnconstrained)
            late = std::min(late, lateRCj[std::size_t(x)] + (cp - ej));
        items.push_back({x, ctx.sb().op(x).cls, earlyRC[std::size_t(x)],
                         late});
    }
    int tard = reference::rjMaxTardiness(machine, items, counters);

    PairPoint pt;
    pt.y = composeBound(cp, tard);
    pt.x = std::max(pt.y - latency, ei);
    return pt;
}

/** One grid point of the naive triplewise search. */
struct TriplePoint
{
    int x = 0;
    int y = 0;
    int z = 0;
};

TriplePoint
evalTriple(const GraphContext &ctx, const MachineModel &machine,
           const std::vector<int> &earlyRC,
           const std::vector<int> &lateRCk, OpId i, OpId j, OpId k,
           int bi, int bj, int bk, int a, int b, BoundCounters *counters)
{
    const std::vector<int> &heightI = ctx.heightToBranch(bi);
    const std::vector<int> &heightJ = ctx.heightToBranch(bj);
    const std::vector<int> &heightK = ctx.heightToBranch(bk);
    int ei = earlyRC[std::size_t(i)];
    int ej = earlyRC[std::size_t(j)];
    int ek = earlyRC[std::size_t(k)];

    int jToK = std::max(b, heightK[std::size_t(j)]);

    auto augHeight = [&](OpId x) {
        int h = heightK[std::size_t(x)];
        int hj = heightJ[std::size_t(x)];
        int hi = heightI[std::size_t(x)];
        int hjNew = hj;
        if (hi >= 0)
            hjNew = std::max(hjNew, hi + a);
        if (hjNew >= 0)
            h = std::max(h, hjNew + jToK);
        return h;
    };

    int cp = ek;
    for (OpId x = 0; x <= k; ++x) {
        if (heightK[std::size_t(x)] < 0)
            continue;
        cp = std::max(cp, earlyRC[std::size_t(x)] + augHeight(x));
        tick(counters);
    }

    std::vector<RelaxItem> items;
    for (OpId x = 0; x <= k; ++x) {
        if (heightK[std::size_t(x)] < 0)
            continue;
        int late = cp - augHeight(x);
        if (lateRCk[std::size_t(x)] != lateUnconstrained)
            late = std::min(late, lateRCk[std::size_t(x)] + (cp - ek));
        items.push_back({x, ctx.sb().op(x).cls, earlyRC[std::size_t(x)],
                         late});
    }
    int tard = reference::rjMaxTardiness(machine, items, counters);

    TriplePoint pt;
    pt.z = composeBound(cp, tard);
    pt.y = std::max(pt.z - b, ej);
    pt.x = std::max(pt.y - a, ei);
    return pt;
}

} // namespace

int
rjMaxTardiness(const MachineModel &machine, std::vector<RelaxItem> &items,
               BoundCounters *counters)
{
    if (items.empty())
        return negInfBound;

    std::sort(items.begin(), items.end(),
              [](const RelaxItem &a, const RelaxItem &b) {
                  if (a.late != b.late)
                      return a.late < b.late;
                  if (a.early != b.early)
                      return a.early < b.early;
                  return a.op < b.op;
              });

    ResourceState table(machine);
    int maxTardiness = negInfBound;
    for (const RelaxItem &item : items) {
        bsAssert(item.early >= 0, "negative early time in relaxation");
        int cycle = item.early;
        while (!table.hasSlot(cycle, item.cls)) {
            ++cycle;
            tick(counters);
        }
        table.reserve(cycle, item.cls);
        maxTardiness = std::max(maxTardiness, cycle - item.late);
        tick(counters);
    }
    return maxTardiness;
}

std::vector<int>
lcEarlyRC(const GraphContext &ctx, const MachineModel &machine,
          const LcOptions &opts, BoundCounters *counters)
{
    return naiveLcEarlyRC(NaiveDag::fromSuperblock(ctx.sb()), machine,
                          opts, counters);
}

std::vector<int>
lateRCFor(const GraphContext &ctx, const MachineModel &machine,
          int branchIdx, const std::vector<int> &earlyRC,
          BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    OpId b = sb.branches()[std::size_t(branchIdx)];

    std::vector<OpId> newToOld;
    NaiveDag reversed = NaiveDag::reversedClosure(
        sb, ctx.predSets().closure(b), &newToOld);
    std::vector<int> revEarly =
        naiveLcEarlyRC(reversed, machine, {}, counters);

    std::vector<int> lateRC(std::size_t(sb.numOps()), lateUnconstrained);
    int anchor = earlyRC[std::size_t(b)];
    for (std::size_t nid = 0; nid < newToOld.size(); ++nid) {
        lateRC[std::size_t(newToOld[nid])] = anchor - revEarly[nid];
    }
    return lateRC;
}

PairPoint
computePairBound(const GraphContext &ctx, const MachineModel &machine,
                 const std::vector<int> &earlyRC,
                 const std::vector<int> &lateRCj, int bi, int bj,
                 double wi, double wj, const PairwiseOptions &opts,
                 BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    bsAssert(bi >= 0 && bj > bi && bj < sb.numBranches(),
             "bad branch pair (", bi, ", ", bj, ")");
    OpId i = sb.branches()[std::size_t(bi)];
    OpId j = sb.branches()[std::size_t(bj)];
    int ei = earlyRC[std::size_t(i)];
    int ej = earlyRC[std::size_t(j)];

    int lMin = sb.op(i).latency;
    int lMax = ej + 1;

    std::vector<PairPoint> recorded;
    auto eval = [&](int l) {
        PairPoint pt = evalPair(ctx, machine, earlyRC, lateRCj, i, j, bi,
                                bj, l, counters);
        recorded.push_back(pt);
        return pt;
    };

    int l0 = std::clamp(ej - ei, lMin, lMax);
    PairPoint first = eval(l0);

    if (first.x == ei && first.y == ej)
        return first;

    if (first.y != ej) {
        int steps = 0;
        bool reached = false;
        for (int l = l0 - 1; l >= lMin; --l) {
            if (++steps > opts.maxSweepSteps)
                break;
            PairPoint pt = eval(l);
            if (pt.y == ej) {
                reached = true;
                break;
            }
        }
        if (!reached && l0 - 1 >= lMin && steps > opts.maxSweepSteps)
            recorded.push_back({ei, ej});
    }

    {
        int steps = 0;
        bool reached = first.x == ei;
        if (!reached) {
            for (int l = l0 + 1; l <= lMax; ++l) {
                if (++steps > opts.maxSweepSteps)
                    break;
                PairPoint pt = eval(l);
                if (pt.x == ei) {
                    reached = true;
                    break;
                }
            }
        }
        if (!reached)
            recorded.push_back({ei, std::max(ej, ei + lMax)});
    }

    PairPoint best = recorded.front();
    double bestCost = wi * best.x + wj * best.y;
    for (const PairPoint &pt : recorded) {
        double cost = wi * pt.x + wj * pt.y;
        if (cost < bestCost) {
            bestCost = cost;
            best = pt;
        }
    }
    return best;
}

PairwiseResult
pairwiseBounds(const GraphContext &ctx, const MachineModel &machine,
               const std::vector<int> &earlyRC,
               const std::vector<std::vector<int>> &lateRCPerBranch,
               const PairwiseOptions &opts, BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    PairwiseResult out;
    out.b = sb.numBranches();
    bsAssert(int(lateRCPerBranch.size()) == out.b,
             "need one LateRC vector per branch");

    out.pairs.resize(std::size_t(out.b) * std::size_t(out.b));
    for (int bi = 0; bi < out.b; ++bi) {
        OpId i = sb.branches()[std::size_t(bi)];
        double wi = sb.exitProb(i);
        for (int bj = bi + 1; bj < out.b; ++bj) {
            OpId j = sb.branches()[std::size_t(bj)];
            double wj = sb.exitProb(j);
            out.pairs[std::size_t(bi) * std::size_t(out.b) +
                      std::size_t(bj)] =
                reference::computePairBound(ctx, machine, earlyRC,
                                 lateRCPerBranch[std::size_t(bj)], bi, bj,
                                 wi, wj, opts, counters);
        }
    }

    out.wct = 0.0;
    for (int k = 0; k < out.b; ++k) {
        OpId opK = sb.branches()[std::size_t(k)];
        double w = sb.exitProb(opK);
        double avg;
        if (out.b == 1) {
            avg = double(earlyRC[std::size_t(opK)]);
        } else {
            double sum = 0.0;
            for (int other = 0; other < out.b; ++other) {
                if (other == k)
                    continue;
                sum += other > k ? double(out.pair(k, other).x)
                                 : double(out.pair(other, k).y);
            }
            avg = sum / double(out.b - 1);
        }
        out.wct += w * (avg + sb.op(opK).latency);
    }
    return out;
}

TriplewiseResult
computeTriplewise(const GraphContext &ctx, const MachineModel &machine,
                  const std::vector<int> &earlyRC,
                  const std::vector<std::vector<int>> &lateRCPerBranch,
                  double pairwiseWct, const TriplewiseOptions &opts,
                  BoundCounters *counters)
{
    const Superblock &sb = ctx.sb();
    int numBr = sb.numBranches();

    TriplewiseResult result;
    if (numBr < 3 || numBr > opts.maxBranches) {
        result.wct = pairwiseWct;
        result.fellBack = true;
        return result;
    }

    std::vector<double> sums(std::size_t(numBr), 0.0);
    std::vector<long long> counts(std::size_t(numBr), 0);
    long long evals = 0;

    for (int bi = 0; bi < numBr && evals < opts.maxEvals; ++bi) {
        for (int bj = bi + 1; bj < numBr && evals < opts.maxEvals; ++bj) {
            for (int bk = bj + 1; bk < numBr && evals < opts.maxEvals;
                 ++bk) {
                OpId i = sb.branches()[std::size_t(bi)];
                OpId j = sb.branches()[std::size_t(bj)];
                OpId k = sb.branches()[std::size_t(bk)];
                double wi = sb.exitProb(i);
                double wj = sb.exitProb(j);
                double wk = sb.exitProb(k);
                int ei = earlyRC[std::size_t(i)];
                int ej = earlyRC[std::size_t(j)];
                const std::vector<int> &lateRCk =
                    lateRCPerBranch[std::size_t(bk)];

                int aMin = sb.op(i).latency;
                int bMin = sb.op(j).latency;
                int ek = earlyRC[std::size_t(k)];
                int aCap = std::min(ek + 1, aMin + opts.maxLatRange);
                int bCap = std::min(ek + 1, bMin + opts.maxLatRange);

                TriplePoint best;
                bool haveBest = false;
                auto record = [&](TriplePoint pt) {
                    double cost = wi * pt.x + wj * pt.y + wk * pt.z;
                    if (!haveBest ||
                        cost < wi * best.x + wj * best.y + wk * best.z) {
                        best = pt;
                        haveBest = true;
                    }
                };

                for (int a = aMin; a <= aCap; ++a) {
                    bool columnAllXAtFloor = true;
                    int yFloor = std::max(ej, ei + a);
                    bool innerBroke = false;
                    TriplePoint last{};
                    for (int b = bMin; b <= bCap; ++b) {
                        TriplePoint pt =
                            evalTriple(ctx, machine, earlyRC, lateRCk, i,
                                       j, k, bi, bj, bk, a, b, counters);
                        ++evals;
                        if (a == aCap) {
                            pt.x = ei;
                            pt.y = ej;
                        }
                        record(pt);
                        last = pt;
                        if (pt.x != ei)
                            columnAllXAtFloor = false;
                        if (pt.x == ei && pt.y <= yFloor) {
                            innerBroke = true;
                            break;
                        }
                        if (evals >= opts.maxEvals)
                            break;
                    }
                    if (!innerBroke) {
                        TriplePoint capped{ei, yFloor, last.z};
                        if (a == aCap)
                            capped.y = ej;
                        record(capped);
                    }
                    if (columnAllXAtFloor)
                        break;
                    if (evals >= opts.maxEvals)
                        break;
                }

                if (haveBest) {
                    sums[std::size_t(bi)] += best.x;
                    sums[std::size_t(bj)] += best.y;
                    sums[std::size_t(bk)] += best.z;
                    ++counts[std::size_t(bi)];
                    ++counts[std::size_t(bj)];
                    ++counts[std::size_t(bk)];
                    ++result.triplesEvaluated;
                }
            }
        }
    }

    long long cmax = *std::max_element(counts.begin(), counts.end());
    if (cmax == 0) {
        result.wct = pairwiseWct;
        result.fellBack = true;
        return result;
    }

    double wct = 0.0;
    for (int m = 0; m < numBr; ++m) {
        OpId opM = sb.branches()[std::size_t(m)];
        double w = sb.exitProb(opM);
        double padded = sums[std::size_t(m)] +
                        double(cmax - counts[std::size_t(m)]) *
                            double(earlyRC[std::size_t(opM)]);
        wct += w * (padded / double(cmax) + sb.op(opM).latency);
    }
    result.wct = wct;
    return result;
}

WctBounds
computeWctBounds(const GraphContext &ctx, const MachineModel &machine,
                 const BoundConfig &config, BoundCounterSet *counters)
{
    const Superblock &sb = ctx.sb();

    WctBounds out;
    out.cp = naiveWctFromBranchEarly(sb, naiveCpEarly(ctx));
    out.hu = naiveWctFromBranchEarly(
        sb,
        naiveHuEarly(ctx, machine, counters ? &counters->hu : nullptr));
    out.rj = naiveWctFromBranchEarly(
        sb,
        naiveRjEarly(ctx, machine, counters ? &counters->rj : nullptr));

    std::vector<int> earlyRC = reference::lcEarlyRC(
        ctx, machine, config.lc, counters ? &counters->lc : nullptr);

    std::vector<std::vector<int>> lateRCs;
    lateRCs.reserve(std::size_t(sb.numBranches()));
    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        lateRCs.push_back(
            reference::lateRCFor(ctx, machine, bi, earlyRC,
                      counters ? &counters->lcReverse : nullptr));
    }

    std::vector<int> lcBranches;
    lcBranches.reserve(std::size_t(sb.numBranches()));
    for (OpId b : sb.branches())
        lcBranches.push_back(earlyRC[std::size_t(b)]);
    out.lc = naiveWctFromBranchEarly(sb, lcBranches);

    if (config.computePairwise) {
        PairwiseResult pw =
            reference::pairwiseBounds(ctx, machine, earlyRC, lateRCs,
                           config.pairwise,
                           counters ? &counters->pw : nullptr);
        out.pw = pw.wct;
        if (config.computeTriplewise) {
            TriplewiseResult tw = reference::computeTriplewise(
                ctx, machine, earlyRC, lateRCs, pw.wct,
                config.triplewise, counters ? &counters->tw : nullptr);
            out.tw = tw.wct;
        } else {
            out.tw = out.pw;
        }
    } else {
        out.pw = out.lc;
        out.tw = out.lc;
    }
    return out;
}

} // namespace reference

} // namespace balance
