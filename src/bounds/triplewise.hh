/**
 * @file
 * The Triplewise bound (Section 4.4). The paper defers the details
 * to a technical report; this is the natural extension of Theorem 2
 * to branch triples, with the derivation recorded in DESIGN.md.
 *
 * For each ordered branch triple (i, j, k) we sweep a pair of forced
 * separation latencies: an added edge i -> j with latency a and an
 * added edge j -> k with latency b. Solving the Rim & Jain
 * relaxation of the subgraph rooted at k per grid point yields a
 * candidate triple (x, y, z) of issue-cycle lower bounds valid for
 * every schedule with those exact separations; boundary candidates
 * with coordinates relaxed to the individual EarlyRC values cover
 * separations beyond the sweep range. The minimum of
 * w_i x + w_j y + w_k z over all candidates lower-bounds the
 * weighted completion of the three branches in any schedule.
 *
 * Aggregation generalizes Theorem 3 and supports *partial* triple
 * enumeration under a work budget: with count_m triples containing
 * branch m and cmax the maximum count, padding each deficit with the
 * singleton inequality t_m >= EarlyRC[m] keeps the averaged bound
 * valid (see DESIGN.md).
 */

#ifndef BALANCE_BOUNDS_TRIPLEWISE_HH
#define BALANCE_BOUNDS_TRIPLEWISE_HH

#include <vector>

#include "bounds/counters.hh"
#include "bounds/pairwise.hh"
#include "graph/analysis.hh"
#include "machine/machine_model.hh"

namespace balance
{

/** Tuning knobs for the triplewise computation. */
struct TriplewiseOptions
{
    /**
     * Superblocks with more branches than this skip the triplewise
     * computation entirely (the result falls back to the pairwise
     * bound). Keeps the O(B^3) enumeration affordable.
     */
    int maxBranches = 12;

    /** Sweep range cap per latency dimension. */
    int maxLatRange = 24;

    /**
     * Total relaxation evaluations allowed per superblock; once
     * exhausted, remaining triples are skipped (the partial
     * aggregation stays valid).
     */
    long long maxEvals = 200000;
};

/** Result of the triplewise superblock bound. */
struct TriplewiseResult
{
    /** Weighted-completion-time lower bound. */
    double wct = 0.0;
    /** True when no triple was evaluated (bound equals fallback). */
    bool fellBack = false;
    /** Number of triples fully evaluated. */
    long long triplesEvaluated = 0;
};

/**
 * Compute the triplewise superblock bound.
 *
 * @param ctx Analysis context.
 * @param machine Resource widths.
 * @param earlyRC EarlyRC per operation.
 * @param lateRCPerBranch LateRC per branch (branch order).
 * @param pw Pairwise bounds for the same superblock (fallback and
 *        floor).
 * @param opts Budgets.
 * @param counters Optional cost accounting.
 * @param scratch Optional worker-private working storage reused
 *        across calls; a private one is created when null.
 */
TriplewiseResult computeTriplewise(
    const GraphContext &ctx, const MachineModel &machine,
    const std::vector<int> &earlyRC,
    const std::vector<std::vector<int>> &lateRCPerBranch,
    const PairwiseBounds &pw, const TriplewiseOptions &opts = {},
    BoundCounters *counters = nullptr, BoundScratch *scratch = nullptr);

} // namespace balance

#endif // BALANCE_BOUNDS_TRIPLEWISE_HH
