#include "eval/experiment.hh"

#include <algorithm>
#include <cmath>

#include "sched/decision_log.hh"
#include "sched/priorities.hh"
#include "support/diagnostics.hh"
#include "support/flight_recorder.hh"
#include "support/metrics.hh"
#include "support/parallel_for.hh"
#include "support/progress.hh"
#include "support/telemetry.hh"
#include "support/trace.hh"

namespace balance
{

HeuristicSet
HeuristicSet::paperSet(bool withBest)
{
    HeuristicSet set;
    set.primaries = {
        std::make_shared<SuccessiveRetirementScheduler>(),
        std::make_shared<CriticalPathScheduler>(),
        std::make_shared<GStarScheduler>(),
        std::make_shared<DhasyScheduler>(),
        std::make_shared<HelpScheduler>(),
        std::make_shared<BalanceScheduler>(),
    };
    set.withBest = withBest;
    return set;
}

std::vector<std::string>
HeuristicSet::names() const
{
    std::vector<std::string> out;
    for (const auto &s : primaries)
        out.push_back(s->name());
    if (withBest)
        out.push_back("Best");
    return out;
}

std::vector<double>
noProfileWeights(const Superblock &sb)
{
    // Table 5: the last branch weighs 1000, all others weigh 1.
    std::vector<double> w(std::size_t(sb.numBranches()), 1.0);
    w.back() = 1000.0;
    return w;
}

SuperblockEval
evaluateSuperblock(const Superblock &sb, const MachineModel &machine,
                   const HeuristicSet &set, const EvalOptions &opts)
{
    TraceSpan span("evaluateSuperblock",
                   (long long)(sb.numOps()));
    FlightScope flight("eval:superblock", (long long)(sb.numOps()));
    FlightRecorder::global().record(FlightEventType::Superblock, "eval",
                                    (long long)(sb.numOps()),
                                    (long long)(sb.numBranches()));
    GraphContext ctx(sb);

    // Telemetry rides in a worker-private scratch + stats structs so
    // the hot paths never touch shared state; everything is folded
    // into the registry by the caller's serial reduction.
    const bool wantTelemetry =
        metricsCollectionEnabled() || decisionLogEnabled();
    std::unique_ptr<BoundScratch> scratch;
    if (wantTelemetry)
        scratch = std::make_unique<BoundScratch>(machine);

    // One toolkit serves both the bound evaluation and Balance.
    BoundsToolkit toolkit(ctx, machine, opts.bounds, nullptr,
                          scratch.get());

    SuperblockEval eval;
    eval.frequency = sb.execFrequency();

    // Bounds (reusing the toolkit's LC/LateRC/PW artifacts).
    eval.bounds.cp = wctFromBranchEarly(sb, cpEarly(ctx));
    eval.bounds.hu = wctFromBranchEarly(sb, huEarly(ctx, machine));
    eval.bounds.rj = wctFromBranchEarly(sb, rjEarly(ctx, machine));
    std::vector<int> lcBranches;
    for (OpId b : sb.branches())
        lcBranches.push_back(toolkit.earlyRC()[std::size_t(b)]);
    eval.bounds.lc = wctFromBranchEarly(sb, lcBranches);
    if (toolkit.pairwise()) {
        eval.bounds.pw = toolkit.pairwise()->superblockWct();
        if (opts.bounds.computeTriplewise) {
            std::vector<std::vector<int>> lateRCs;
            for (int bi = 0; bi < sb.numBranches(); ++bi)
                lateRCs.push_back(toolkit.lateRC(bi));
            eval.bounds.tw = computeTriplewise(
                                 ctx, machine, toolkit.earlyRC(), lateRCs,
                                 *toolkit.pairwise(),
                                 opts.bounds.triplewise, nullptr,
                                 scratch.get())
                                 .wct;
        } else {
            eval.bounds.tw = eval.bounds.pw;
        }
    } else {
        eval.bounds.pw = eval.bounds.lc;
        eval.bounds.tw = eval.bounds.lc;
    }
    eval.tightest = eval.bounds.tightest();

    // One scheduler scratch per evaluation: the priority tables are
    // computed once here and shared by every heuristic and the Best
    // grid, and its counters stay per-superblock so the serial fold
    // below is thread-invariant.
    SchedScratch schedScratch;

    ScheduleRequest req;
    req.scratch = &schedScratch;
    if (opts.noProfileSteering)
        req.branchWeights = noProfileWeights(sb);

    // Telemetry receivers for the heuristic runs. Attaching them is
    // observational only: SchedulerStats and DecisionLog are written,
    // never read, by the schedulers.
    SchedulerStats balStats;
    SchedulerStats listStats;
    DecisionLog dlog(sb.name());

    // Primaries; Balance reuses the toolkit. The best primary
    // schedule is kept whole: it seeds the B&B certifier below, so
    // the certified incumbent can never be worse than the lineup.
    double bestWct = 0.0;
    bool haveBest = false;
    Schedule bestPrimary;
    for (const auto &sched : set.primaries) {
        Schedule s = [&] {
            auto *bal = dynamic_cast<const BalanceScheduler *>(
                sched.get());
            if (bal && bal->config().useRcBounds) {
                ScheduleRequest balReq = req;
                if (wantTelemetry)
                    balReq.stats = &balStats;
                if (decisionLogEnabled())
                    balReq.decisionLog = &dlog;
                return bal->runWithToolkit(ctx, machine, toolkit,
                                           balReq);
            }
            ScheduleRequest otherReq = req;
            if (wantTelemetry)
                otherReq.stats = &listStats;
            return sched->run(ctx, machine, otherReq);
        }();
        s.validate(sb, machine);
        double w = s.wct(sb);
        eval.wct.push_back(w);
        if (!haveBest || w < bestWct) {
            bestWct = w;
            haveBest = true;
            bestPrimary = s;
        }
    }

    // Best: the primaries' envelope plus the 11x11 combo grid, now
    // blending the scratch's cached priority tables and deduplicating
    // repeated rank permutations. Best selects by true probabilities
    // even under no-profile steering. Like before, the grid runs
    // without SchedulerStats attached.
    if (set.withBest) {
        double gridWct = bestGridWct(ctx, machine, req);
        if (!haveBest || gridWct < bestWct) {
            bestWct = gridWct;
            haveBest = true;
        }
        eval.wct.push_back(bestWct);
    }

    // A heuristic can never beat a valid lower bound; this is the
    // strongest end-to-end cross-check in the library, so keep it
    // always on.
    for (double w : eval.wct) {
        bsAssert(w >= eval.tightest - 1e-6,
                 "schedule beats the lower bound on '", sb.name(),
                 "': wct ", w, " < bound ", eval.tightest);
    }

    // The B&B certifier: single-threaded here because this function
    // already runs on a pool worker (evaluatePopulation parallelizes
    // over superblocks); the engine is deterministic either way.
    if (opts.computeBnb && haveBest &&
        sb.numOps() <= opts.bnbMaxOps) {
        BnbOptions bnbOpts;
        bnbOpts.maxNodes = opts.bnbMaxNodes;
        bnbOpts.threads = 1;
        bnbOpts.seedWithBest = false; // the lineup's best seeds it
        BnbRequest bnbReq;
        bnbReq.toolkit = &toolkit;
        bnbReq.seedSchedule = &bestPrimary;
        bnbReq.staticLowerBound = eval.tightest;
        BnbResult r = bnbSchedule(ctx, machine, bnbOpts, bnbReq);
        r.schedule.validate(sb, machine);
        bsAssert(r.wct <= bestWct + 1e-9 &&
                     r.lowerBound >= eval.tightest - 1e-9,
                 "bnb certificate out of range on '", sb.name(), "'");
        auto summary = std::make_shared<BnbEvalSummary>();
        summary->wct = r.wct;
        summary->lowerBound = r.lowerBound;
        summary->proven = r.proven;
        summary->exhausted = r.exhausted;
        summary->counters = r.counters;
        eval.bnb = std::move(summary);
    }

    if (wantTelemetry) {
        auto tel = std::make_shared<SuperblockTelemetry>();
        tel->balance = balStats;
        tel->list = listStats;
        tel->engine = scratch->stats;
        tel->sched = schedScratch.stats;
        tel->relaxResets = scratch->table.resetCount();
        tel->arenaHighWater =
            (long long)(scratch->arena.highWaterBytes());
        tel->schedArenaHighWater =
            (long long)(schedScratch.highWaterBytes());
        if (decisionLogEnabled()) {
            tel->decisionLog = decisionLogIsJson() ? dlog.toJsonLines()
                                                   : dlog.toText();
        }
        eval.telemetry = std::move(tel);
    }
    return eval;
}

PopulationMetrics
evaluatePopulation(const std::vector<BenchmarkProgram> &suite,
                   const MachineModel &machine, const HeuristicSet &set,
                   const EvalOptions &opts,
                   const std::function<void(const Superblock &,
                                            const SuperblockEval &)>
                       &perSuperblock,
                   int threads)
{
    TraceSpan span("evaluatePopulation",
                   (long long)(suite.size()));
    PopulationMetrics metrics;
    metrics.heuristics = set.names();
    std::size_t numHeuristics = metrics.heuristics.size();

    // Flatten in suite order: the parallel phase fills one slot per
    // superblock, the serial reduction below walks the slots in this
    // exact order so every float accumulation happens in the same
    // sequence as a serial run.
    std::vector<const Superblock *> flat;
    for (const BenchmarkProgram &prog : suite)
        for (const Superblock &sb : prog.superblocks)
            flat.push_back(&sb);

    // Live progress for /progress: registered only when the tracker
    // is on, so a server-off run pays one relaxed load right here and
    // a null check per superblock.
    ProgressTracker &tracker = ProgressTracker::global();
    PhaseProgress *progress =
        tracker.enabled() ? &tracker.phase("eval") : nullptr;
    if (progress)
        progress->start((long long)(flat.size()));
    FlightScope flight("eval", (long long)(flat.size()));

    std::vector<SuperblockEval> evals(flat.size());
    parallelFor(
        flat.size(),
        [&](std::size_t i) {
            evals[i] = evaluateSuperblock(*flat[i], machine, set, opts);
            if (progress)
                progress->tick();
        },
        threads);
    if (progress)
        progress->finish();

    double trivialCycles = 0.0;
    std::vector<double> heuristicCyclesNontrivial(numHeuristics, 0.0);
    double boundCyclesNontrivial = 0.0;
    std::vector<int> optimalNontrivial(numHeuristics, 0);
    std::vector<int> optimalAll(numHeuristics, 0);
    int nontrivialCount = 0;

    // Serial telemetry fold: suite order, integral sums, max-gauges —
    // so the registry contents are thread-invariant too.
    MetricRegistry &reg = MetricRegistry::global();
    const bool foldMetrics = metricsCollectionEnabled();

    for (std::size_t slot = 0; slot < flat.size(); ++slot) {
        const Superblock &sb = *flat[slot];
        const SuperblockEval &eval = evals[slot];
        if (perSuperblock)
            perSuperblock(sb, eval);

        if (const SuperblockTelemetry *tel = eval.telemetry.get()) {
            if (foldMetrics) {
                const SchedulerStats &bal = tel->balance;
                reg.counter("sched.balance.decisions")
                    .add(bal.decisions);
                reg.counter("sched.balance.loop_trips")
                    .add(bal.loopTrips);
                reg.counter("sched.balance.full_updates")
                    .add(bal.fullUpdates);
                reg.counter("sched.balance.light_updates")
                    .add(bal.lightUpdates);
                reg.counter("sched.balance.selection_passes")
                    .add(bal.selectionPasses);
                reg.counter("sched.balance.candidates")
                    .add(bal.candidatesSum);
                reg.histogram("sched.balance.decisions_per_superblock")
                    .observe(bal.decisions);

                const SchedulerStats &list = tel->list;
                reg.counter("sched.list.decisions").add(list.decisions);
                reg.counter("sched.list.loop_trips")
                    .add(list.loopTrips);
                reg.counter("sched.list.cycles").add(list.cycles);
                reg.counter("sched.list.ready_sum").add(list.readySum);

                reg.counter("bounds.pair_skeleton.hits")
                    .add(tel->engine.pairSkeletonHits);
                reg.counter("bounds.pair_skeleton.misses")
                    .add(tel->engine.pairSkeletonMisses);
                reg.counter("bounds.triple_skeleton.hits")
                    .add(tel->engine.tripleSkeletonHits);
                reg.counter("bounds.triple_skeleton.misses")
                    .add(tel->engine.tripleSkeletonMisses);
                reg.counter("bounds.relax.epoch_resets")
                    .add(tel->relaxResets);
                reg.gauge("bounds.scratch.high_water_bytes")
                    .observeMax(tel->arenaHighWater);

                reg.counter("sched.priority_tables.hits")
                    .add(tel->sched.tableHits);
                reg.counter("sched.priority_tables.misses")
                    .add(tel->sched.tableMisses);
                reg.counter("sched.best.grid_runs")
                    .add(tel->sched.gridRuns);
                reg.counter("sched.best.grid_skipped")
                    .add(tel->sched.gridSkipped);
                reg.gauge("sched.scratch.high_water_bytes")
                    .observeMax(tel->schedArenaHighWater);
            }
            if (!tel->decisionLog.empty())
                appendDecisionLog(tel->decisionLog);
        }

        if (const BnbEvalSummary *bnb = eval.bnb.get();
            bnb && foldMetrics) {
            reg.counter("bnb.instances").add(1);
            if (bnb->proven)
                reg.counter("bnb.proven").add(1);
            reg.counter("bnb.nodes_expanded")
                .add(bnb->counters.nodesExpanded);
            reg.counter("bnb.pruned_by_bound")
                .add(bnb->counters.prunedByBound);
            reg.counter("bnb.pruned_by_dominance")
                .add(bnb->counters.prunedByDominance);
            reg.counter("bnb.incumbent_updates")
                .add(bnb->counters.incumbentUpdates);
            reg.counter("bnb.tasks_completed")
                .add(bnb->counters.tasksCompleted);
            reg.counter("bnb.tasks_aborted")
                .add(bnb->counters.tasksAborted);
            reg.counter("bnb.rounds").add(bnb->counters.rounds);
        }

        ++metrics.superblocks;
        double lbCycles = eval.frequency * eval.tightest;
        metrics.boundCycles += lbCycles;

        bool trivial = true;
        for (std::size_t h = 0; h < numHeuristics; ++h) {
            bool optimal = eval.wct[h] <= eval.tightest + 1e-9;
            if (optimal)
                ++optimalAll[h];
            // Best does not participate in the trivial test: the
            // paper defines trivial over the heuristics compared.
            if (metrics.heuristics[h] != "Best" && !optimal)
                trivial = false;
        }

        if (trivial) {
            ++metrics.trivialSuperblocks;
            trivialCycles += lbCycles;
        } else {
            ++nontrivialCount;
            boundCyclesNontrivial += lbCycles;
            for (std::size_t h = 0; h < numHeuristics; ++h) {
                heuristicCyclesNontrivial[h] +=
                    eval.frequency * eval.wct[h];
                if (eval.wct[h] <= eval.tightest + 1e-9)
                    ++optimalNontrivial[h];
            }
        }
    }

    metrics.trivialCycleFraction =
        metrics.boundCycles > 0.0 ? trivialCycles / metrics.boundCycles
                                  : 0.0;
    for (std::size_t h = 0; h < numHeuristics; ++h) {
        double slowdown = boundCyclesNontrivial > 0.0
            ? (heuristicCyclesNontrivial[h] - boundCyclesNontrivial) /
                  boundCyclesNontrivial
            : 0.0;
        metrics.nontrivialSlowdown.push_back(slowdown);
        metrics.optimalNontrivialFraction.push_back(
            nontrivialCount > 0
                ? double(optimalNontrivial[h]) / nontrivialCount
                : 1.0);
        metrics.optimalFraction.push_back(
            metrics.superblocks > 0
                ? double(optimalAll[h]) / metrics.superblocks
                : 1.0);
    }
    return metrics;
}

} // namespace balance
