/**
 * @file
 * Minimal command-line handling shared by the bench binaries:
 * suite scale, seed, and machine-configuration selection. Every
 * table bench accepts
 *
 *   --scale <0..1]   fraction of the 6615-superblock suite
 *   --seed <u64>     suite master seed
 *   --config <name>  restrict to one machine config (repeatable)
 *   --threads <n>    worker threads (default: hardware concurrency)
 *   --metrics-out <f>  metrics-registry JSON snapshot at exit
 *   --trace-out <f>    Chrome trace-event spans (chrome://tracing)
 *   --decision-log <f> Balance decision log (text or JSON lines)
 *   --help
 *
 * Results are bitwise independent of --threads: the eval drivers
 * evaluate superblocks into pre-sized slots and reduce in suite
 * order, so any thread count reproduces the --threads 1 bytes.
 */

#ifndef BALANCE_EVAL_BENCH_OPTIONS_HH
#define BALANCE_EVAL_BENCH_OPTIONS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "machine/machine_model.hh"
#include "support/telemetry.hh"
#include "workload/suite.hh"

namespace balance
{

/** Parsed bench options. */
struct BenchOptions
{
    SuiteOptions suite;
    std::vector<MachineModel> machines;
    /** Worker threads for the eval drivers; 0 = hardware. */
    int threads = 0;
    /** Telemetry sinks (activated by parseBenchOptions). */
    TelemetryOptions telemetry;

    /** Build the (possibly scaled) suite. */
    std::vector<BenchmarkProgram> buildSuitePopulation() const;
};

/**
 * Parse argv; prints usage and exits on --help or bad input.
 *
 * @param argc Argument count from main.
 * @param argv Argument vector from main.
 * @param defaultScale Scale used when --scale is absent (table
 *        benches over the heuristics default below 1.0 to keep the
 *        default run minutes-scale; pass 1.0 to reproduce the full
 *        population).
 */
BenchOptions parseBenchOptions(int argc, char **argv,
                               double defaultScale = 1.0);

/**
 * Checked numeric option parsing shared by every bench CLI (the
 * unchecked std::stod/std::stoull/std::atoi calls either threw
 * uncaught or silently turned garbage into 0). Each helper either
 * returns the fully parsed value or prints the one-line diagnostic
 *
 *   <tool>: bad <opt> value '<text>' (expected <what>)
 *
 * to stderr and exits with @p exitCode (must be nonzero).
 */

/** Report a bad option value and exit; @p expected describes the
 *  accepted form (e.g. "number in (0, 1]"). */
[[noreturn]] void optionError(std::string_view tool,
                              std::string_view opt,
                              std::string_view text,
                              std::string_view expected,
                              int exitCode = 1);

/** Parse a decimal integer in [@p min, @p max]. */
long long parseIntOption(std::string_view tool, std::string_view opt,
                         std::string_view text, long long min,
                         long long max, int exitCode = 1);

/** Parse a decimal u64 (full range; seeds use every bit). */
std::uint64_t parseUint64Option(std::string_view tool,
                                std::string_view opt,
                                std::string_view text,
                                int exitCode = 1);

/** Parse a finite double; range checks stay at the call site (use
 *  optionError to report them with the same diagnostic shape). */
double parseDoubleOption(std::string_view tool, std::string_view opt,
                         std::string_view text, int exitCode = 1);

} // namespace balance

#endif // BALANCE_EVAL_BENCH_OPTIONS_HH
