/**
 * @file
 * Minimal command-line handling shared by the bench binaries:
 * suite scale, seed, and machine-configuration selection. Every
 * table bench accepts
 *
 *   --scale <0..1]   fraction of the 6615-superblock suite
 *   --seed <u64>     suite master seed
 *   --config <name>  restrict to one machine config (repeatable)
 *   --threads <n>    worker threads (default: hardware concurrency)
 *   --metrics-out <f>  metrics-registry JSON snapshot at exit
 *   --trace-out <f>    Chrome trace-event spans (chrome://tracing)
 *   --decision-log <f> Balance decision log (text or JSON lines)
 *   --help
 *
 * Results are bitwise independent of --threads: the eval drivers
 * evaluate superblocks into pre-sized slots and reduce in suite
 * order, so any thread count reproduces the --threads 1 bytes.
 */

#ifndef BALANCE_EVAL_BENCH_OPTIONS_HH
#define BALANCE_EVAL_BENCH_OPTIONS_HH

#include <string>
#include <vector>

#include "machine/machine_model.hh"
#include "support/telemetry.hh"
#include "workload/suite.hh"

namespace balance
{

/** Parsed bench options. */
struct BenchOptions
{
    SuiteOptions suite;
    std::vector<MachineModel> machines;
    /** Worker threads for the eval drivers; 0 = hardware. */
    int threads = 0;
    /** Telemetry sinks (activated by parseBenchOptions). */
    TelemetryOptions telemetry;

    /** Build the (possibly scaled) suite. */
    std::vector<BenchmarkProgram> buildSuitePopulation() const;
};

/**
 * Parse argv; prints usage and exits on --help or bad input.
 *
 * @param argc Argument count from main.
 * @param argv Argument vector from main.
 * @param defaultScale Scale used when --scale is absent (table
 *        benches over the heuristics default below 1.0 to keep the
 *        default run minutes-scale; pass 1.0 to reproduce the full
 *        population).
 */
BenchOptions parseBenchOptions(int argc, char **argv,
                               double defaultScale = 1.0);

} // namespace balance

#endif // BALANCE_EVAL_BENCH_OPTIONS_HH
