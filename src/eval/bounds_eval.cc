#include "eval/bounds_eval.hh"

#include <algorithm>

#include "graph/analysis.hh"
#include "support/diagnostics.hh"

namespace balance
{

std::vector<BoundQuality>
evaluateBoundQuality(const std::vector<BenchmarkProgram> &suite,
                     const MachineModel &machine,
                     const BoundConfig &config)
{
    const char *names[6] = {"CP", "Hu", "RJ", "LC", "PW", "TW"};
    std::vector<RunningStat> gap(6);
    std::vector<int> below(6, 0);
    int total = 0;

    for (const BenchmarkProgram &prog : suite) {
        for (const Superblock &sb : prog.superblocks) {
            GraphContext ctx(sb);
            WctBounds bounds = computeWctBounds(ctx, machine, config);
            double tight = bounds.tightest();
            double values[6] = {bounds.cp, bounds.hu, bounds.rj,
                                bounds.lc, bounds.pw, bounds.tw};
            ++total;
            for (int i = 0; i < 6; ++i) {
                double g = tight > 0.0
                    ? (tight - values[i]) / tight * 100.0
                    : 0.0;
                gap[std::size_t(i)].add(std::max(0.0, g));
                if (values[i] < tight - 1e-9)
                    ++below[std::size_t(i)];
            }
        }
    }

    std::vector<BoundQuality> out;
    for (int i = 0; i < 6; ++i) {
        BoundQuality q;
        q.name = names[i];
        q.avgGapPercent = gap[std::size_t(i)].mean();
        q.maxGapPercent = gap[std::size_t(i)].max();
        q.belowPercent =
            total > 0 ? 100.0 * below[std::size_t(i)] / total : 0.0;
        out.push_back(q);
    }
    return out;
}

std::vector<BoundCost>
evaluateBoundCost(const std::vector<BenchmarkProgram> &suite,
                  const MachineModel &machine, const BoundConfig &config)
{
    const char *names[8] = {"CP",          "Hu", "RJ", "LC",
                            "LC-original", "LC-reverse", "PW", "TW"};
    std::vector<SampleStat> trips(8);

    for (const BenchmarkProgram &prog : suite) {
        for (const Superblock &sb : prog.superblocks) {
            GraphContext ctx(sb);

            // CP's cost is the dependence analysis itself: one trip
            // per (edge, branch) pair in the height computations.
            long long cpTrips = 0;
            for (int bi = 0; bi < sb.numBranches(); ++bi)
                cpTrips += sb.numOps() + sb.numEdges();
            trips[0].add(double(cpTrips));

            BoundCounters hu;
            huEarly(ctx, machine, &hu);
            trips[1].add(double(hu.trips));

            BoundCounters rj;
            rjEarly(ctx, machine, &rj);
            trips[2].add(double(rj.trips));

            BoundCounters lc;
            std::vector<int> earlyRC =
                lcEarlyRCForSuperblock(ctx, machine, {}, &lc);
            trips[3].add(double(lc.trips));

            BoundCounters lcOrig;
            LcOptions noTheorem1;
            noTheorem1.useTheorem1 = false;
            lcEarlyRCForSuperblock(ctx, machine, noTheorem1, &lcOrig);
            trips[4].add(double(lcOrig.trips));

            BoundCounters lcRev;
            std::vector<std::vector<int>> lateRCs;
            for (int bi = 0; bi < sb.numBranches(); ++bi) {
                lateRCs.push_back(
                    lateRCFor(ctx, machine, bi, earlyRC, &lcRev));
            }
            trips[5].add(double(lcRev.trips));

            BoundCounters pwC;
            PairwiseBounds pw(ctx, machine, earlyRC, lateRCs,
                              config.pairwise, &pwC);
            trips[6].add(double(pwC.trips));

            BoundCounters twC;
            computeTriplewise(ctx, machine, earlyRC, lateRCs, pw,
                              config.triplewise, &twC);
            trips[7].add(double(twC.trips));
        }
    }

    std::vector<BoundCost> out;
    for (int i = 0; i < 8; ++i) {
        BoundCost c;
        c.name = names[i];
        c.averageTrips = trips[std::size_t(i)].mean();
        c.medianTrips = trips[std::size_t(i)].median();
        out.push_back(c);
    }
    return out;
}

} // namespace balance
