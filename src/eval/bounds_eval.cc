#include "eval/bounds_eval.hh"

#include <algorithm>
#include <array>

#include "graph/analysis.hh"
#include "support/diagnostics.hh"
#include "support/metrics.hh"
#include "support/parallel_for.hh"
#include "support/telemetry.hh"
#include "support/trace.hh"

namespace balance
{

namespace
{

/** Flatten a suite into suite-order superblock pointers. */
std::vector<const Superblock *>
flattenSuite(const std::vector<BenchmarkProgram> &suite)
{
    std::vector<const Superblock *> flat;
    for (const BenchmarkProgram &prog : suite)
        for (const Superblock &sb : prog.superblocks)
            flat.push_back(&sb);
    return flat;
}

} // namespace

std::vector<BoundQuality>
evaluateBoundQuality(const std::vector<BenchmarkProgram> &suite,
                     const MachineModel &machine,
                     const BoundConfig &config, int threads)
{
    TraceSpan span("evaluateBoundQuality",
                   (long long)(suite.size()));
    const char *names[6] = {"CP", "Hu", "RJ", "LC", "PW", "TW"};

    // Parallel phase: one WctBounds slot per superblock, filled in
    // any order by the pool; computeWctBounds is pure.
    std::vector<const Superblock *> flat = flattenSuite(suite);
    std::vector<WctBounds> slots(flat.size());
    parallelFor(
        flat.size(),
        [&](std::size_t i) {
            GraphContext ctx(*flat[i]);
            slots[i] = computeWctBounds(ctx, machine, config);
        },
        threads);

    // Serial reduction in suite order: stats accumulate in the same
    // sequence as a single-threaded run, so the output is
    // byte-stable for any thread count.
    std::vector<RunningStat> gap(6);
    std::vector<int> below(6, 0);
    int total = 0;
    for (const WctBounds &bounds : slots) {
        double tight = bounds.tightest();
        double values[6] = {bounds.cp, bounds.hu, bounds.rj,
                            bounds.lc, bounds.pw, bounds.tw};
        ++total;
        for (int i = 0; i < 6; ++i) {
            double g = tight > 0.0
                ? (tight - values[i]) / tight * 100.0
                : 0.0;
            gap[std::size_t(i)].add(std::max(0.0, g));
            if (values[i] < tight - 1e-9)
                ++below[std::size_t(i)];
        }
    }

    std::vector<BoundQuality> out;
    for (int i = 0; i < 6; ++i) {
        BoundQuality q;
        q.name = names[i];
        q.avgGapPercent = gap[std::size_t(i)].mean();
        q.maxGapPercent = gap[std::size_t(i)].max();
        q.belowPercent =
            total > 0 ? 100.0 * below[std::size_t(i)] / total : 0.0;
        out.push_back(q);
    }
    return out;
}

std::vector<BoundCost>
evaluateBoundCost(const std::vector<BenchmarkProgram> &suite,
                  const MachineModel &machine, const BoundConfig &config,
                  int threads)
{
    TraceSpan span("evaluateBoundCost", (long long)(suite.size()));
    const char *names[8] = {"CP",          "Hu", "RJ", "LC",
                            "LC-original", "LC-reverse", "PW", "TW"};

    std::vector<const Superblock *> flat = flattenSuite(suite);
    std::vector<std::array<double, 8>> slots(flat.size());

    // Exact trip totals per slot for the metric registry: the rows
    // hold doubles (for means/medians), but the Table 2 counters are
    // integers and the registry fold must match them exactly.
    const bool foldMetrics = metricsCollectionEnabled();
    std::vector<std::array<long long, 8>> tripSlots(
        foldMetrics ? flat.size() : 0);

    parallelFor(
        flat.size(),
        [&](std::size_t idx) {
            const Superblock &sb = *flat[idx];
            std::array<double, 8> &row = slots[idx];
            GraphContext ctx(sb);

            // CP's cost is the dependence analysis itself: one trip
            // per (edge, branch) pair in the height computations.
            long long cpTrips = 0;
            for (int bi = 0; bi < sb.numBranches(); ++bi)
                cpTrips += sb.numOps() + sb.numEdges();
            row[0] = double(cpTrips);

            BoundCounters hu;
            huEarly(ctx, machine, &hu);
            row[1] = double(hu.trips);

            BoundCounters rj;
            rjEarly(ctx, machine, &rj);
            row[2] = double(rj.trips);

            BoundCounters lc;
            std::vector<int> earlyRC =
                lcEarlyRCForSuperblock(ctx, machine, {}, &lc);
            row[3] = double(lc.trips);

            BoundCounters lcOrig;
            LcOptions noTheorem1;
            noTheorem1.useTheorem1 = false;
            lcEarlyRCForSuperblock(ctx, machine, noTheorem1, &lcOrig);
            row[4] = double(lcOrig.trips);

            BoundCounters lcRev;
            std::vector<std::vector<int>> lateRCs;
            for (int bi = 0; bi < sb.numBranches(); ++bi) {
                lateRCs.push_back(
                    lateRCFor(ctx, machine, bi, earlyRC, &lcRev));
            }
            row[5] = double(lcRev.trips);

            BoundCounters pwC;
            PairwiseBounds pw(ctx, machine, earlyRC, lateRCs,
                              config.pairwise, &pwC);
            row[6] = double(pwC.trips);

            BoundCounters twC;
            computeTriplewise(ctx, machine, earlyRC, lateRCs, pw,
                              config.triplewise, &twC);
            row[7] = double(twC.trips);

            if (foldMetrics) {
                tripSlots[idx] = {cpTrips,      hu.trips,  rj.trips,
                                  lc.trips,     lcOrig.trips,
                                  lcRev.trips,  pwC.trips, twC.trips};
            }
        },
        threads);

    std::vector<SampleStat> trips(8);
    for (const std::array<double, 8> &row : slots)
        for (int i = 0; i < 8; ++i)
            trips[std::size_t(i)].add(row[std::size_t(i)]);

    if (foldMetrics) {
        // Serial, suite-order fold; totals equal the BoundCounters
        // sums bit for bit (pinned by the telemetry integration
        // test).
        static const char *metricNames[8] = {
            "bounds.trips.cp",          "bounds.trips.hu",
            "bounds.trips.rj",          "bounds.trips.lc",
            "bounds.trips.lc_original", "bounds.trips.lc_reverse",
            "bounds.trips.pw",          "bounds.trips.tw"};
        MetricRegistry &reg = MetricRegistry::global();
        for (const std::array<long long, 8> &row : tripSlots)
            for (int i = 0; i < 8; ++i)
                reg.counter(metricNames[i]).add(row[std::size_t(i)]);
    }

    std::vector<BoundCost> out;
    for (int i = 0; i < 8; ++i) {
        BoundCost c;
        c.name = names[i];
        c.averageTrips = trips[std::size_t(i)].mean();
        c.medianTrips = trips[std::size_t(i)].median();
        out.push_back(c);
    }
    return out;
}

} // namespace balance
