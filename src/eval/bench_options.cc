#include "eval/bench_options.hh"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "support/diagnostics.hh"
#include "support/strings.hh"

namespace balance
{

std::vector<BenchmarkProgram>
BenchOptions::buildSuitePopulation() const
{
    return buildSuite(suite);
}

void
optionError(std::string_view tool, std::string_view opt,
            std::string_view text, std::string_view expected,
            int exitCode)
{
    bsAssert(exitCode != 0, "optionError needs a nonzero exit code");
    std::cerr << tool << ": bad " << opt << " value '" << text
              << "' (expected " << expected << ")\n";
    std::exit(exitCode);
}

long long
parseIntOption(std::string_view tool, std::string_view opt,
               std::string_view text, long long min, long long max,
               int exitCode)
{
    long long v = 0;
    if (!parseInt(text, v) || v < min || v > max) {
        std::string range = "integer in [" + std::to_string(min) +
                            ", " + std::to_string(max) + "]";
        optionError(tool, opt, text, range, exitCode);
    }
    return v;
}

std::uint64_t
parseUint64Option(std::string_view tool, std::string_view opt,
                  std::string_view text, int exitCode)
{
    std::uint64_t v = 0;
    const char *first = text.data();
    const char *last = text.data() + text.size();
    std::from_chars_result r = std::from_chars(first, last, v, 10);
    if (text.empty() || r.ec != std::errc() || r.ptr != last)
        optionError(tool, opt, text, "unsigned 64-bit integer",
                    exitCode);
    return v;
}

double
parseDoubleOption(std::string_view tool, std::string_view opt,
                  std::string_view text, int exitCode)
{
    double v = 0.0;
    if (!parseDouble(text, v) || !std::isfinite(v))
        optionError(tool, opt, text, "finite number", exitCode);
    return v;
}

BenchOptions
parseBenchOptions(int argc, char **argv, double defaultScale)
{
    BenchOptions opts;
    opts.suite.scale = defaultScale;

    auto usage = [&](int code) {
        std::cout
            << "usage: " << argv[0] << " [options]\n"
            << "  --scale <f>    suite fraction in (0,1], default "
            << defaultScale << "\n"
            << "  --seed <u64>   suite master seed\n"
            << "  --config <m>   GP1|GP2|GP4|FS4|FS6|FS8 (repeatable;\n"
            << "                 default: all six)\n"
            << "  --threads <n>  worker threads (default: hardware\n"
            << "                 concurrency; results are identical\n"
            << "                 for every thread count)\n"
            << telemetryUsage();
        std::exit(code);
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                usage(1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--scale") {
            std::string text = next();
            double v = parseDoubleOption(argv[0], arg, text);
            if (v <= 0.0 || v > 1.0)
                optionError(argv[0], arg, text, "number in (0, 1]");
            opts.suite.scale = v;
        } else if (arg == "--seed") {
            opts.suite.seed = parseUint64Option(argv[0], arg, next());
        } else if (arg == "--threads") {
            // 0 is the "auto" convention used throughout the stack:
            // one worker per hardware thread.
            opts.threads =
                int(parseIntOption(argv[0], arg, next(), 0, 4096));
        } else if (arg == "--config") {
            opts.machines.push_back(MachineModel::byName(next()));
        } else if (parseTelemetryFlag(arg, next, opts.telemetry)) {
            // handled
        } else {
            std::cerr << "unknown option " << arg << "\n";
            usage(1);
        }
    }

    if (opts.machines.empty())
        opts.machines = MachineModel::paperConfigs();
    initTelemetry(opts.telemetry);
    return opts;
}

} // namespace balance
