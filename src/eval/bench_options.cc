#include "eval/bench_options.hh"

#include <cstdlib>
#include <iostream>
#include <string>

#include "support/diagnostics.hh"
#include "support/strings.hh"

namespace balance
{

std::vector<BenchmarkProgram>
BenchOptions::buildSuitePopulation() const
{
    return buildSuite(suite);
}

BenchOptions
parseBenchOptions(int argc, char **argv, double defaultScale)
{
    BenchOptions opts;
    opts.suite.scale = defaultScale;

    auto usage = [&](int code) {
        std::cout
            << "usage: " << argv[0] << " [options]\n"
            << "  --scale <f>    suite fraction in (0,1], default "
            << defaultScale << "\n"
            << "  --seed <u64>   suite master seed\n"
            << "  --config <m>   GP1|GP2|GP4|FS4|FS6|FS8 (repeatable;\n"
            << "                 default: all six)\n"
            << "  --threads <n>  worker threads (default: hardware\n"
            << "                 concurrency; results are identical\n"
            << "                 for every thread count)\n"
            << telemetryUsage();
        std::exit(code);
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                usage(1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--scale") {
            double v = 0.0;
            if (!parseDouble(next(), v) || v <= 0.0 || v > 1.0) {
                std::cerr << "bad --scale value\n";
                usage(1);
            }
            opts.suite.scale = v;
        } else if (arg == "--seed") {
            long long v = 0;
            if (!parseInt(next(), v)) {
                std::cerr << "bad --seed value\n";
                usage(1);
            }
            opts.suite.seed = std::uint64_t(v);
        } else if (arg == "--threads") {
            long long v = 0;
            // 0 is the "auto" convention used throughout the stack:
            // one worker per hardware thread.
            if (!parseInt(next(), v) || v < 0 || v > 4096) {
                std::cerr << "bad --threads value\n";
                usage(1);
            }
            opts.threads = int(v);
        } else if (arg == "--config") {
            opts.machines.push_back(MachineModel::byName(next()));
        } else if (parseTelemetryFlag(arg, next, opts.telemetry)) {
            // handled
        } else {
            std::cerr << "unknown option " << arg << "\n";
            usage(1);
        }
    }

    if (opts.machines.empty())
        opts.machines = MachineModel::paperConfigs();
    initTelemetry(opts.telemetry);
    return opts;
}

} // namespace balance
