/**
 * @file
 * Bound-quality and bound-cost evaluation drivers (Tables 1 and 2).
 */

#ifndef BALANCE_EVAL_BOUNDS_EVAL_HH
#define BALANCE_EVAL_BOUNDS_EVAL_HH

#include <string>
#include <vector>

#include "bounds/superblock_bounds.hh"
#include "support/stats.hh"
#include "workload/suite.hh"

namespace balance
{

/** Quality summary of one bound against the tightest bound. */
struct BoundQuality
{
    std::string name;
    double avgGapPercent = 0.0; //!< mean of (tightest-bound)/tightest
    double maxGapPercent = 0.0; //!< worst case of the same
    double belowPercent = 0.0;  //!< % of superblocks strictly below
};

/**
 * Table 1 for one machine config: quality of CP/Hu/RJ/LC/PW/TW
 * relative to the per-superblock tightest bound.
 *
 * Superblocks are evaluated concurrently into per-instance slots
 * and reduced in suite order, so the result is bitwise identical
 * for any @p threads value (0 = hardware concurrency, 1 = serial).
 */
std::vector<BoundQuality> evaluateBoundQuality(
    const std::vector<BenchmarkProgram> &suite,
    const MachineModel &machine, const BoundConfig &config = {},
    int threads = 0);

/** Cost summary (loop trips) of one bound algorithm. */
struct BoundCost
{
    std::string name;
    double averageTrips = 0.0;
    double medianTrips = 0.0;
};

/**
 * Table 2 for one machine config: per-superblock loop-trip counts
 * of CP, Hu, RJ, LC, LC-original (no Theorem 1), LC-reverse
 * (LateRC), PW and TW. Deterministically parallel like
 * evaluateBoundQuality().
 */
std::vector<BoundCost> evaluateBoundCost(
    const std::vector<BenchmarkProgram> &suite,
    const MachineModel &machine, const BoundConfig &config = {},
    int threads = 0);

} // namespace balance

#endif // BALANCE_EVAL_BOUNDS_EVAL_HH
