/**
 * @file
 * Shared experiment drivers for the benchmark harnesses: evaluate
 * every heuristic and every bound on a superblock population and
 * aggregate the paper's metrics (dynamic cycle counts, trivial
 * superblock split, slowdowns, optimal fractions, CDF curves).
 *
 * Heavy artifacts (GraphContext, the LC/LateRC/Pairwise toolkit)
 * are computed once per (superblock, machine) and shared between
 * the bound evaluation and the Balance heuristic, mirroring how a
 * production compiler would structure the pass.
 */

#ifndef BALANCE_EVAL_EXPERIMENT_HH
#define BALANCE_EVAL_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bounds/bound_scratch.hh"
#include "bounds/superblock_bounds.hh"
#include "core/balance_scheduler.hh"
#include "sched/best_scheduler.hh"
#include "sched/bnb/bnb.hh"
#include "sched/list_scheduler.hh"
#include "sched/sched_scratch.hh"
#include "workload/suite.hh"

namespace balance
{

/** The paper's heuristic lineup (Section 6.2). */
struct HeuristicSet
{
    /** SR, CP, G*, DHASY, Help, Balance — in the paper's order. */
    std::vector<std::shared_ptr<const Scheduler>> primaries;
    /** Include the Best envelope (primaries + 121 combos). */
    bool withBest = true;

    /** @return the standard lineup. */
    static HeuristicSet paperSet(bool withBest = true);

    /** @return display names, Best last when enabled. */
    std::vector<std::string> names() const;
};

/** Options for evaluating one superblock. */
struct EvalOptions
{
    BoundConfig bounds;
    /**
     * Steer probability-driven heuristics with the no-profile
     * weights of Table 5 (last branch 1000, others 1) instead of
     * the true probabilities. The objective and Best's selection
     * always use the true probabilities.
     */
    bool noProfileSteering = false;
    /**
     * Also run the branch-and-bound certifier on each superblock
     * (size-capped by @ref bnbMaxOps), seeded with the best primary
     * schedule. Off by default: the certifier costs orders of
     * magnitude more than every heuristic combined.
     */
    bool computeBnb = false;
    /** Node budget per superblock for the certifier. */
    long long bnbMaxNodes = 200000;
    /** Superblocks above this op count skip the certifier. */
    int bnbMaxOps = 100;
};

/**
 * Branch-and-bound certificate captured for one superblock (present
 * in SuperblockEval only when EvalOptions::computeBnb is set and the
 * instance fits under EvalOptions::bnbMaxOps). `wct` is the
 * certified incumbent — never worse than the best primary heuristic,
 * which seeds the search — and `lowerBound` is a proven floor on the
 * optimal WCT, so `proven` upgrades the instance's gap attribution
 * from "vs. bound" to "vs. optimum".
 */
struct BnbEvalSummary
{
    double wct = 0.0;
    double lowerBound = 0.0;
    bool proven = false;
    bool exhausted = false;
    BnbCounters counters;
};

/**
 * Telemetry captured while evaluating one superblock. Collected in
 * the parallel phase into this plain per-slot struct and folded into
 * the global MetricRegistry only during the serial suite-order
 * reduction, so metric values — like every other result — are
 * bitwise identical for any thread count. Absent (null) when
 * telemetry is off; collecting it never changes schedules or bounds.
 */
struct SuperblockTelemetry
{
    /** Balance engine accounting (decisions, updates, selection). */
    SchedulerStats balance;
    /** The other heuristics' list-scheduler accounting, combined. */
    SchedulerStats list;
    /** Sweep-skeleton cache hits and misses. */
    BoundEngineStats engine;
    /** Scheduler-engine accounting (table cache, grid dedup). */
    SchedEngineStats sched;
    /** RelaxTable epoch resets during this evaluation. */
    long long relaxResets = 0;
    /** ScratchArena high-water mark in bytes (bound scratch). */
    long long arenaHighWater = 0;
    /** SchedScratch run-arena high-water mark in bytes. */
    long long schedArenaHighWater = 0;
    /** Rendered Balance decision log (empty when capture is off). */
    std::string decisionLog;
};

/** Everything measured for one (superblock, machine) pair. */
struct SuperblockEval
{
    WctBounds bounds;
    double tightest = 0.0;
    /** WCT per heuristic, order matching HeuristicSet::names(). */
    std::vector<double> wct;
    double frequency = 1.0;
    /** Present exactly when telemetry collection is enabled. */
    std::shared_ptr<SuperblockTelemetry> telemetry;
    /** Present when the B&B certifier ran (see BnbEvalSummary). */
    std::shared_ptr<BnbEvalSummary> bnb;
};

/** @return the Table 5 steering weights for @p sb. */
std::vector<double> noProfileWeights(const Superblock &sb);

/**
 * Evaluate bounds and every heuristic on one superblock. All
 * produced schedules are validated against the machine model.
 */
SuperblockEval evaluateSuperblock(const Superblock &sb,
                                  const MachineModel &machine,
                                  const HeuristicSet &set,
                                  const EvalOptions &opts = {});

/** Aggregated metrics over a population (one machine config). */
struct PopulationMetrics
{
    std::vector<std::string> heuristics;
    /** Dynamic lower-bound cycles over all superblocks. */
    double boundCycles = 0.0;
    /** Fraction of bound cycles spent in trivial superblocks. */
    double trivialCycleFraction = 0.0;
    int superblocks = 0;
    int trivialSuperblocks = 0;
    /** Slowdown vs bound over nontrivial superblocks, per heuristic. */
    std::vector<double> nontrivialSlowdown;
    /** Fraction of nontrivial superblocks scheduled at the bound. */
    std::vector<double> optimalNontrivialFraction;
    /** Fraction of ALL superblocks scheduled at the bound. */
    std::vector<double> optimalFraction;
};

/**
 * Run the full per-config evaluation over a suite.
 *
 * Superblocks are evaluated concurrently on the work-stealing pool
 * (evaluateSuperblock is a pure function of its arguments); each
 * result lands in a pre-sized slot and the aggregation — including
 * every @p perSuperblock callback — runs serially in suite order
 * afterwards. The returned metrics are therefore bitwise identical
 * for every @p threads value, including 1.
 *
 * @param suite Superblock population.
 * @param machine Machine configuration.
 * @param set Heuristic lineup.
 * @param opts Evaluation options.
 * @param perSuperblock Optional observer invoked with each
 *        superblock's evaluation (for CDF building). Called on the
 *        caller's thread, in suite order; it need not be
 *        thread-safe.
 * @param threads Worker count; 0 = hardware concurrency, 1 = serial.
 */
PopulationMetrics evaluatePopulation(
    const std::vector<BenchmarkProgram> &suite,
    const MachineModel &machine, const HeuristicSet &set,
    const EvalOptions &opts = {},
    const std::function<void(const Superblock &,
                             const SuperblockEval &)> &perSuperblock =
        nullptr,
    int threads = 0);

} // namespace balance

#endif // BALANCE_EVAL_EXPERIMENT_HH
