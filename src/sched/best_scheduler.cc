#include "sched/best_scheduler.hh"

#include "sched/priorities.hh"

namespace balance
{

BestScheduler::BestScheduler(
    std::vector<std::shared_ptr<const Scheduler>> primaries,
    int gridSteps)
    : primaries(std::move(primaries)), gridSteps(gridSteps)
{
}

int
BestScheduler::runsPerSuperblock() const
{
    return int(primaries.size()) + (gridSteps + 1) * (gridSteps + 1);
}

Schedule
BestScheduler::run(const GraphContext &ctx, const MachineModel &machine,
                   const ScheduleRequest &req) const
{
    const Superblock &sb = ctx.sb();

    bool haveBest = false;
    Schedule best;
    double bestWct = 0.0;
    auto consider = [&](Schedule s) {
        double w = s.wct(sb);
        if (!haveBest || w < bestWct) {
            best = std::move(s);
            bestWct = w;
            haveBest = true;
        }
    };

    for (const auto &sched : primaries)
        consider(sched->run(ctx, machine, req));

    // The cross product: a*CP + b*SR + c*DHASY over an integer grid,
    // with the DHASY share absorbing whatever a and b leave (clamped
    // at zero), for (gridSteps+1)^2 combinations.
    std::vector<double> cp = normalizeKey(criticalPathKey(ctx));
    std::vector<double> sr = normalizeKey(successiveRetirementKey(ctx));
    std::vector<double> dh =
        normalizeKey(dhasyKey(ctx, steeringWeights(sb, req)));
    for (int a = 0; a <= gridSteps; ++a) {
        for (int b = 0; b <= gridSteps; ++b) {
            double fa = double(a) / gridSteps;
            double fb = double(b) / gridSteps;
            double fc = std::max(0.0, 1.0 - fa - fb);
            consider(listSchedule(sb, machine,
                                  combineKeys(cp, fa, sr, fb, dh, fc),
                                  req.stats));
        }
    }
    return best;
}

} // namespace balance
