#include "sched/best_scheduler.hh"

#include <algorithm>
#include <cstdint>
#include <span>

#include "sched/priorities.hh"
#include "sched/sched_scratch.hh"
#include "support/perf_counters.hh"

namespace balance
{

namespace
{

/** Schedule::wct() over a raw issue span (same accumulation order). */
double
wctOfIssue(const Superblock &sb, std::span<const int> issue)
{
    double total = 0.0;
    for (OpId b : sb.branches()) {
        total += sb.exitProb(b) *
                 (issue[std::size_t(b)] + sb.op(b).latency);
    }
    return total;
}

/** FNV-1a over a rank permutation; collisions re-checked exactly. */
std::uint64_t
permHash(std::span<const std::int32_t> perm)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::int32_t x : perm) {
        h ^= std::uint64_t(std::uint32_t(x));
        h *= 1099511628211ULL;
    }
    return h;
}

bool
samePerm(std::span<const std::int32_t> a,
         const std::vector<std::int32_t> &b)
{
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
}

void
addStats(SchedulerStats &into, const SchedulerStats &delta)
{
    into.decisions += delta.decisions;
    into.loopTrips += delta.loopTrips;
    into.cycles += delta.cycles;
    into.readySum += delta.readySum;
    into.fullUpdates += delta.fullUpdates;
    into.lightUpdates += delta.lightUpdates;
    into.selectionPasses += delta.selectionPasses;
    into.candidatesSum += delta.candidatesSum;
}

/**
 * Sweep the (gridSteps+1)^2 blend grid, scheduling each *unique* rank
 * permutation once. The greedy core sees a priority vector only
 * through its rank permutation, so a repeated permutation is proof
 * the run would reproduce an earlier one bit for bit; the dedup
 * memory replays that run's WCT and stats delta instead (keeping
 * @p stats totals identical to scheduling all points).
 *
 * @return the minimum WCT over the grid; when @p wantIssue, the
 *         first schedule attaining it is left in scr.bestIssueBuf.
 */
double
gridSweep(const GraphContext &ctx, const MachineModel &machine,
          const std::vector<double> &weights, int gridSteps,
          SchedulerStats *stats, SchedScratch &scr, bool wantIssue)
{
    PerfRegion perf(PerfPhase::BestGrid);
    const Superblock &sb = ctx.sb();
    const std::vector<double> &cp = scr.cpKeyNormalized(ctx);
    const std::vector<double> &sr = scr.srKeyNormalized(ctx);
    const std::vector<double> &dh = scr.dhKeyNormalized(ctx, weights);
    scr.grid.clear();

    bool have = false;
    double bestW = 0.0;
    for (int a = 0; a <= gridSteps; ++a) {
        for (int b = 0; b <= gridSteps; ++b) {
            double fa = double(a) / gridSteps;
            double fb = double(b) / gridSteps;
            double fc = std::max(0.0, 1.0 - fa - fb);
            // Fused blend + key map: same permutation as blending
            // into a buffer and ranking it, without the round trip.
            std::span<const std::int32_t> perm =
                priorityRankOrderBlended(sb, fa, cp, fb, sr, fc, dh,
                                         scr);
            std::uint64_t h = permHash(perm);

            int found = -1;
            for (std::size_t i = 0; i < scr.grid.hashes.size(); ++i) {
                if (scr.grid.hashes[i] == h &&
                    samePerm(perm, scr.grid.perms[i])) {
                    found = int(i);
                    break;
                }
            }

            double w;
            if (found >= 0) {
                // A duplicate reproduces an earlier run exactly, so
                // it can never strictly improve the envelope either.
                ++scr.stats.gridSkipped;
                if (stats)
                    addStats(*stats,
                             scr.grid.deltas[std::size_t(found)]);
                w = scr.grid.wcts[std::size_t(found)];
            } else {
                ++scr.stats.gridRuns;
                SchedulerStats delta;
                std::span<const int> issue = listScheduleRanked(
                    sb, machine, perm, stats ? &delta : nullptr, scr);
                w = wctOfIssue(sb, issue);
                if (stats)
                    addStats(*stats, delta);
                scr.grid.hashes.push_back(h);
                scr.grid.perms.emplace_back(perm.begin(), perm.end());
                scr.grid.wcts.push_back(w);
                scr.grid.deltas.push_back(delta);
                if (wantIssue && (!have || w < bestW))
                    scr.bestIssueBuf.assign(issue.begin(), issue.end());
            }
            if (!have || w < bestW) {
                bestW = w;
                have = true;
            }
        }
    }
    return bestW;
}

} // namespace

BestScheduler::BestScheduler(
    std::vector<std::shared_ptr<const Scheduler>> primaries,
    int gridSteps)
    : primaries(std::move(primaries)), gridSteps(gridSteps)
{
}

int
BestScheduler::runsPerSuperblock() const
{
    return int(primaries.size()) + (gridSteps + 1) * (gridSteps + 1);
}

Schedule
BestScheduler::run(const GraphContext &ctx, const MachineModel &machine,
                   const ScheduleRequest &req) const
{
    const Superblock &sb = ctx.sb();
    SchedScratch &scr =
        req.scratch ? *req.scratch : threadLocalSchedScratch();
    ScheduleRequest inner = req;
    inner.scratch = &scr;

    bool haveBest = false;
    Schedule best;
    double bestWct = 0.0;
    for (const auto &sched : primaries) {
        Schedule s = sched->run(ctx, machine, inner);
        double w = s.wct(sb);
        if (!haveBest || w < bestWct) {
            best = std::move(s);
            bestWct = w;
            haveBest = true;
        }
    }

    // The cross product: a*CP + b*SR + c*DHASY over an integer grid,
    // with the DHASY share absorbing whatever a and b leave (clamped
    // at zero). Strict < throughout keeps the first minimum, so the
    // primaries-then-grid order matches running all points in line.
    std::vector<double> weights = steeringWeights(sb, inner);
    double gridWct = gridSweep(ctx, machine, weights, gridSteps,
                               req.stats, scr, true);
    if (!haveBest || gridWct < bestWct) {
        Schedule s(sb.numOps());
        for (OpId id = 0; id < sb.numOps(); ++id)
            s.setIssue(id, scr.bestIssueBuf[std::size_t(id)]);
        best = std::move(s);
        haveBest = true;
    }
    return best;
}

double
bestGridWct(const GraphContext &ctx, const MachineModel &machine,
            const ScheduleRequest &req, int gridSteps)
{
    SchedScratch &scr =
        req.scratch ? *req.scratch : threadLocalSchedScratch();
    std::vector<double> weights = steeringWeights(ctx.sb(), req);
    return gridSweep(ctx, machine, weights, gridSteps, req.stats, scr,
                     false);
}

} // namespace balance
