/**
 * @file
 * The generic cycle-driven list scheduler shared by the Critical
 * Path, Successive Retirement, DHASY, G*, and combo heuristics: a
 * static priority per operation, a ready set, and a greedy fill of
 * each cycle in priority order.
 *
 * The same core also schedules operation *subsets*, which G* needs
 * to rank branches by scheduling each branch's predecessor closure
 * in isolation.
 */

#ifndef BALANCE_SCHED_LIST_SCHEDULER_HH
#define BALANCE_SCHED_LIST_SCHEDULER_HH

#include <cstdint>
#include <span>
#include <vector>

#include "graph/analysis.hh"
#include "machine/machine_model.hh"
#include "sched/schedule.hh"
#include "support/bitset.hh"

namespace balance
{

class SchedScratch;

/**
 * Cost accounting for Table 6 plus observability extras. Only
 * `decisions` and `loopTrips` feed published numbers; the rest are
 * telemetry that the eval layer folds into the metric registry, and
 * schedulers may leave any of them zero.
 */
struct SchedulerStats
{
    long long decisions = 0; //!< operations placed
    long long loopTrips = 0; //!< inner-loop iterations
    long long cycles = 0;    //!< machine cycles stepped
    long long readySum = 0;  //!< ready-queue length summed per cycle
    long long fullUpdates = 0;  //!< full BranchDynamics rebuilds
    long long lightUpdates = 0; //!< incremental BranchDynamics updates
    long long selectionPasses = 0; //!< branch-selection passes
    long long candidatesSum = 0;   //!< candidate ops considered
};

/**
 * Greedy cycle-by-cycle list scheduling of all operations.
 *
 * In each cycle, ready operations (all predecessors issued and
 * latencies elapsed) are placed in decreasing priority order while a
 * unit of their class is free; ties break toward the lower operation
 * id (program order). The cycle then advances.
 *
 * @param sb The superblock.
 * @param machine Resource widths.
 * @param priority One value per operation; higher schedules first.
 * @param stats Optional cost accounting.
 * @param scratch Optional per-worker scratch; null falls back to a
 *        thread-local one. Results are identical either way.
 * @return a complete, valid schedule.
 */
Schedule listSchedule(const Superblock &sb, const MachineModel &machine,
                      const std::vector<double> &priority,
                      SchedulerStats *stats = nullptr,
                      SchedScratch *scratch = nullptr);

/**
 * List-schedule only the operations in @p subset (same greedy rule).
 * Dependences from operations outside the subset are ignored, which
 * matches G*'s use: the subset is always predecessor-closed.
 *
 * @return issue cycles for subset members; -1 elsewhere.
 */
std::vector<int> listScheduleSubset(const Superblock &sb,
                                    const MachineModel &machine,
                                    const DynBitset &subset,
                                    const std::vector<double> &priority,
                                    SchedulerStats *stats = nullptr,
                                    SchedScratch *scratch = nullptr);

/**
 * Rank permutation of all operations under (@p priority desc, id
 * asc) — the only view of the priorities the greedy core ever sees,
 * so two priority vectors with equal permutations produce bit-for-
 * bit identical schedules and stats (the Best grid dedups on this).
 *
 * Rewinds @p scratch's run arena and allocates the permutation from
 * it: valid until the next run on the same scratch.
 */
std::span<const std::int32_t>
priorityRankOrder(const Superblock &sb,
                  const std::vector<double> &priority,
                  SchedScratch &scratch);

/**
 * priorityRankOrder for the blended priority a*cp + b*sr + c*dh
 * without materializing the blended vector: a fused kernel maps each
 * blend straight to its sort key. The permutation is bit-for-bit the
 * one combineKeysInto + priorityRankOrder would produce on the same
 * tables — the blend keeps the same association order and the key
 * map is strictly monotone — which is how the Best combo grid shares
 * one vectorized recompute across its 121 points.
 */
std::span<const std::int32_t>
priorityRankOrderBlended(const Superblock &sb, double a,
                         const std::vector<double> &cp, double b,
                         const std::vector<double> &sr, double c,
                         const std::vector<double> &dh,
                         SchedScratch &scratch);

/**
 * Greedy core driven by a precomputed rank order (from
 * priorityRankOrder on the same scratch). The returned issue spans
 * (indexed by OpId) live in the scratch arena until the next run.
 */
std::span<const int> listScheduleRanked(
    const Superblock &sb, const MachineModel &machine,
    std::span<const std::int32_t> opOfRank, SchedulerStats *stats,
    SchedScratch &scratch);

} // namespace balance

#endif // BALANCE_SCHED_LIST_SCHEDULER_HH
