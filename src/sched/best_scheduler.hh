/**
 * @file
 * The paper's "Best" envelope (Section 6.2): run the primary
 * heuristics plus a three-dimensional cross product of the CP, SR,
 * and DHASY priority functions — 121 extra list-scheduler runs — and
 * keep the schedule with the lowest weighted completion time.
 *
 * Best always selects by the true exit probabilities, even when the
 * primaries are steered by no-profile weights, matching Table 5's
 * methodology.
 */

#ifndef BALANCE_SCHED_BEST_SCHEDULER_HH
#define BALANCE_SCHED_BEST_SCHEDULER_HH

#include <memory>
#include <vector>

#include "sched/heuristics.hh"

namespace balance
{

/**
 * Envelope scheduler: minimum-WCT schedule over a set of primaries
 * and the 11x11 combo grid.
 */
class BestScheduler : public Scheduler
{
  public:
    /**
     * @param primaries Heuristics whose schedules join the envelope
     *        (typically SR, CP, G*, DHASY, Help, Balance). May be
     *        empty; the combo grid always runs.
     * @param gridSteps Grid resolution per axis; the default 10
     *        yields the paper's 121 combo runs.
     */
    explicit BestScheduler(
        std::vector<std::shared_ptr<const Scheduler>> primaries,
        int gridSteps = 10);

    std::string name() const override { return "Best"; }
    Schedule run(const GraphContext &ctx, const MachineModel &machine,
                 const ScheduleRequest &req = {}) const override;

    /** @return the number of list-scheduler runs per superblock. */
    int runsPerSuperblock() const;

  private:
    std::vector<std::shared_ptr<const Scheduler>> primaries;
    int gridSteps;
};

/**
 * The combo grid alone: minimum weighted completion time over the
 * (gridSteps+1)^2 blends of the cached CP/SR/DHASY tables, with runs
 * whose blended rank permutation repeats an earlier point served from
 * the dedup memory instead of being rescheduled. This is what the
 * eval and report layers add to the primaries' envelope; it returns
 * exactly the minimum the 121 discrete listSchedule() calls used to
 * produce.
 */
double bestGridWct(const GraphContext &ctx, const MachineModel &machine,
                   const ScheduleRequest &req = {}, int gridSteps = 10);

} // namespace balance

#endif // BALANCE_SCHED_BEST_SCHEDULER_HH
