#include "sched/sched_scratch.hh"

#include "sched/priorities.hh"

namespace balance
{

void
SchedScratch::ensureSb(const GraphContext &ctx)
{
    if (cachedUid == ctx.uid())
        return;
    cachedUid = ctx.uid();
    haveCpSr = false;
    haveCpNorm = false;
    haveSrNorm = false;
    haveDh = false;
    haveDhNorm = false;
    grid.clear();
}

const std::vector<double> &
SchedScratch::cpKey(const GraphContext &ctx)
{
    ensureSb(ctx);
    if (!haveCpSr) {
        cp = criticalPathKey(ctx);
        sr = successiveRetirementKey(ctx);
        haveCpSr = true;
        ++stats.tableMisses;
    } else {
        ++stats.tableHits;
    }
    return cp;
}

const std::vector<double> &
SchedScratch::srKey(const GraphContext &ctx)
{
    cpKey(ctx); // CP and SR are computed together
    return sr;
}

void
SchedScratch::ensureDh(const GraphContext &ctx,
                       const std::vector<double> &weights)
{
    ensureSb(ctx);
    if (haveDh && dhWeights == weights) {
        ++stats.tableHits;
        return;
    }
    dh = dhasyKey(ctx, weights);
    dhWeights = weights;
    haveDh = true;
    haveDhNorm = false;
    ++stats.tableMisses;
}

const std::vector<double> &
SchedScratch::dhKey(const GraphContext &ctx,
                    const std::vector<double> &weights)
{
    ensureDh(ctx, weights);
    return dh;
}

const std::vector<double> &
SchedScratch::cpKeyNormalized(const GraphContext &ctx)
{
    cpKey(ctx);
    if (!haveCpNorm) {
        cpNorm = normalizeKey(cp);
        haveCpNorm = true;
    }
    return cpNorm;
}

const std::vector<double> &
SchedScratch::srKeyNormalized(const GraphContext &ctx)
{
    srKey(ctx);
    if (!haveSrNorm) {
        srNorm = normalizeKey(sr);
        haveSrNorm = true;
    }
    return srNorm;
}

const std::vector<double> &
SchedScratch::dhKeyNormalized(const GraphContext &ctx,
                              const std::vector<double> &weights)
{
    ensureDh(ctx, weights);
    if (!haveDhNorm) {
        dhNorm = normalizeKey(dh);
        haveDhNorm = true;
    }
    return dhNorm;
}

SchedScratch &
threadLocalSchedScratch()
{
    static thread_local SchedScratch scratch;
    return scratch;
}

} // namespace balance
