/**
 * @file
 * The Scheduler interface and the baseline superblock heuristics
 * evaluated in the paper (Section 2 and Section 6.2):
 * Critical Path, Successive Retirement, DHASY, G* (with Critical
 * Path as the secondary heuristic), and the grid of CP/SR/DHASY
 * priority combinations used by Best.
 *
 * The Help and Balance heuristics live in src/core (they are the
 * paper's contribution and need the bounds machinery).
 */

#ifndef BALANCE_SCHED_HEURISTICS_HH
#define BALANCE_SCHED_HEURISTICS_HH

#include <string>
#include <vector>

#include "graph/analysis.hh"
#include "machine/machine_model.hh"
#include "sched/list_scheduler.hh"
#include "sched/schedule.hh"

namespace balance
{

class DecisionLog;

/**
 * Per-invocation options. @c branchWeights overrides the exit
 * probabilities as the *steering* weights of probability-driven
 * heuristics (the paper's Table 5 no-profile experiment: last branch
 * 1000, others 1); the completion-time objective always uses the
 * true probabilities.
 *
 * @c decisionLog, when non-null, asks the Balance engine to record
 * every scheduling step (sched/decision_log.hh); other schedulers
 * ignore it. Purely observational — the schedule is identical with
 * or without a log attached.
 *
 * @c scratch, when non-null, lends the scheduler a per-worker
 * SchedScratch (cached priority tables, run arena, grid dedup
 * memory); null falls back to a thread-local one. Schedules, WCTs,
 * and stats are identical either way — pinned by
 * tests/sched/sched_engine_golden_test.
 */
struct ScheduleRequest
{
    std::vector<double> branchWeights;
    SchedulerStats *stats = nullptr;
    DecisionLog *decisionLog = nullptr;
    SchedScratch *scratch = nullptr;
};

/** Abstract superblock scheduler. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** @return the display name used in tables ("DHASY", ...). */
    virtual std::string name() const = 0;

    /**
     * Produce a complete schedule of ctx.sb() on @p machine.
     * Implementations must return schedules that pass
     * Schedule::validate().
     */
    virtual Schedule run(const GraphContext &ctx,
                         const MachineModel &machine,
                         const ScheduleRequest &req = {}) const = 0;
};

/**
 * @return the steering weights for a request: the override when
 *         present, else the superblock's exit probabilities.
 */
std::vector<double> steeringWeights(const Superblock &sb,
                                    const ScheduleRequest &req);

/** Critical Path list scheduling (profile-insensitive). */
class CriticalPathScheduler : public Scheduler
{
  public:
    std::string name() const override { return "CP"; }
    Schedule run(const GraphContext &ctx, const MachineModel &machine,
                 const ScheduleRequest &req = {}) const override;
};

/**
 * Successive Retirement: block-by-block retirement order, Critical
 * Path within a block (profile-insensitive).
 */
class SuccessiveRetirementScheduler : public Scheduler
{
  public:
    std::string name() const override { return "SR"; }
    Schedule run(const GraphContext &ctx, const MachineModel &machine,
                 const ScheduleRequest &req = {}) const override;
};

/** Dependence Height and Speculative Yield. */
class DhasyScheduler : public Scheduler
{
  public:
    std::string name() const override { return "DHASY"; }
    Schedule run(const GraphContext &ctx, const MachineModel &machine,
                 const ScheduleRequest &req = {}) const override;
};

/**
 * G*: repeatedly pick the critical branch (smallest ratio of its
 * standalone secondary-heuristic issue cycle to its cumulative exit
 * probability), give its predecessor closure the next retirement
 * tier, remove it, and recurse; finally list-schedule with tiers as
 * the primary key and the secondary key within a tier.
 *
 * The paper evaluates G* with Critical Path as the secondary
 * heuristic (the default here) but defines it generically; DHASY is
 * offered as the alternative.
 */
class GStarScheduler : public Scheduler
{
  public:
    /** Secondary heuristic used for ranking and tie-breaking. */
    enum class Secondary
    {
        CriticalPath,
        Dhasy,
    };

    explicit GStarScheduler(Secondary secondary =
                                Secondary::CriticalPath);

    std::string name() const override;
    Schedule run(const GraphContext &ctx, const MachineModel &machine,
                 const ScheduleRequest &req = {}) const override;

  private:
    Secondary secondary;
};

/**
 * Fixed mix a*CP + b*SR + c*DHASY of normalized priority keys; the
 * Best scheduler instantiates 121 of these.
 */
class ComboScheduler : public Scheduler
{
  public:
    /** Mix coefficients; need not be normalized. */
    ComboScheduler(double a, double b, double c);

    std::string name() const override;
    Schedule run(const GraphContext &ctx, const MachineModel &machine,
                 const ScheduleRequest &req = {}) const override;

  private:
    double cpWeight;
    double srWeight;
    double dhasyWeight;
};

} // namespace balance

#endif // BALANCE_SCHED_HEURISTICS_HH
