#include "sched/bnb/bnb.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "sched/best_scheduler.hh"
#include "sched/bnb/bnb_search.hh"
#include "support/diagnostics.hh"
#include "support/flight_recorder.hh"
#include "support/json.hh"
#include "support/parallel_for.hh"
#include "support/perf_counters.hh"
#include "support/progress.hh"
#include "support/trace.hh"

namespace balance
{

namespace
{

/** Frontier pruning tolerance, matching the engine's. */
constexpr double kPruneEps = 1e-12;
/** A gap at or below this counts as a certified optimum. */
constexpr double kProvenEps = 1e-9;

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
doubleFromBits(std::uint64_t bits)
{
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** The best complete schedule seen so far, merged serially. */
struct Incumbent
{
    bool have = false;
    double wct = 0.0;
    std::vector<int> issue;
};

} // namespace

std::string
BnbResult::certificate() const
{
    JsonWriter w;
    w.beginObject()
        .key("wct")
        .value(wct)
        .key("lower_bound")
        .value(lowerBound)
        .key("proven")
        .value(proven)
        .key("exhausted")
        .value(exhausted)
        .key("nodes_expanded")
        .value(counters.nodesExpanded)
        .key("pruned_by_bound")
        .value(counters.prunedByBound)
        .key("pruned_by_dominance")
        .value(counters.prunedByDominance)
        .key("incumbent_updates")
        .value(counters.incumbentUpdates)
        .key("tasks_completed")
        .value(counters.tasksCompleted)
        .key("tasks_aborted")
        .value(counters.tasksAborted)
        .key("rounds")
        .value(counters.rounds)
        .endObject();
    return w.str();
}

BnbResult
bnbSchedule(const GraphContext &ctx, const MachineModel &machine,
            const BnbOptions &opts, const BnbRequest &req)
{
    const Superblock &sb = ctx.sb();
    TraceSpan span("bnbSchedule", sb.numOps());
    PerfRegion perf(PerfPhase::Bnb);
    bsAssert(opts.maxNodes > 0 && opts.taskChunk > 0 &&
                 opts.splitTarget > 0,
             "bnb: budgets must be positive");

    BnbResult result;
    BnbCounters &counters = result.counters;
    FlightScope flight("bnb", sb.numOps());
    // Nodes already reported to the progress tracker (delta basis).
    long long publishedNodes = 0;

    // Context built serially before any worker runs: static per-op
    // issue floors (the toolkit's EarlyRC when lent, else the
    // dependence-only early times) and the interchangeability
    // classes for dominance pruning. Workers afterwards read only
    // eager GraphContext state.
    std::vector<int> staticEarly =
        req.toolkit ? req.toolkit->earlyRC() : ctx.earlyDC();
    std::vector<std::int32_t> equivClass = bnbEquivClasses(sb);
    int numClasses = 0;
    for (std::int32_t c : equivClass)
        numClasses = std::max(numClasses, c + 1);

    Incumbent inc;
    auto offerSchedule = [&](const Schedule &s) {
        double w = s.wct(sb);
        if (!inc.have || w < inc.wct) {
            inc.have = true;
            inc.wct = w;
            inc.issue.resize(std::size_t(sb.numOps()));
            for (OpId v = 0; v < sb.numOps(); ++v)
                inc.issue[std::size_t(v)] = s.issueOf(v);
        }
    };
    if (req.seedSchedule) {
        bsAssert(req.seedSchedule->numOps() == sb.numOps() &&
                     req.seedSchedule->complete(),
                 "bnb: seed schedule incomplete");
        offerSchedule(*req.seedSchedule);
    }
    if (opts.seedWithBest) {
        // The combo-grid envelope from this layer; callers with a
        // Balance/Help schedule in hand pass it via the request and
        // the better of the two seeds the search.
        TraceSpan seedSpan("bnb.seed");
        BestScheduler grid({});
        offerSchedule(grid.run(ctx, machine));
    }

    auto incumbentValue = [&] { return inc.have ? inc.wct : -1.0; };
    auto absorb = [&](const BnbSubtreeOutcome &o) {
        counters.nodesExpanded += o.stats.nodes;
        counters.prunedByBound += o.stats.prunedBound;
        counters.prunedByDominance += o.stats.prunedDominance;
        counters.incumbentUpdates += o.stats.incumbentUpdates;
        if (o.haveBest && (!inc.have || o.bestWct < inc.wct)) {
            inc.have = true;
            inc.wct = o.bestWct;
            inc.issue = o.bestIssue;
        }
    };

    // Phase 1: serial breadth-first split of the root into a
    // frontier of subproblems. The frontier's size and contents
    // depend only on the instance and options — never on the thread
    // count — which is half of the determinism contract.
    std::deque<BnbPrefix> queue;
    std::vector<BnbPrefix> abandoned;
    {
        TraceSpan splitSpan("bnb.split");
        BnbPrefix root;
        root.nextCycle = 0;
        root.lb = req.staticLowerBound;
        root.chunk = opts.taskChunk;
        queue.push_back(std::move(root));

        BnbScratch &scratch = threadLocalBnbScratch();
        bool budgetHit = false;
        while (!queue.empty() &&
               int(queue.size()) < opts.splitTarget) {
            BnbPrefix p = std::move(queue.front());
            queue.pop_front();
            if (inc.have && p.lb >= inc.wct - kPruneEps) {
                ++counters.prunedByBound;
                continue;
            }
            long long remaining =
                opts.maxNodes - counters.nodesExpanded;
            if (remaining <= 0) {
                abandoned.push_back(std::move(p));
                budgetHit = true;
                break;
            }
            scratch.arena.reset();
            BnbSubtreeSearch engine(ctx, machine, staticEarly,
                                    equivClass, numClasses,
                                    scratch.arena);
            std::vector<BnbPrefix> children;
            BnbSubtreeOutcome o = engine.splitChildren(
                p, incumbentValue(), remaining, children);
            absorb(o);
            if (!o.completed) {
                abandoned.push_back(std::move(p));
                budgetHit = true;
                break;
            }
            for (BnbPrefix &child : children) {
                child.chunk = opts.taskChunk;
                queue.push_back(std::move(child));
            }
        }
        if (budgetHit) {
            for (BnbPrefix &p : queue)
                abandoned.push_back(std::move(p));
            queue.clear();
        }
    }

    // Phase 2: rounds of parallel subtree tasks. Every task of a
    // round prunes against the same incumbent snapshot, published
    // through a shared atomic written only between rounds (mid-round
    // publication would make pruning — and the node counters —
    // depend on worker timing). Outcomes merge serially in task
    // order, so improvements land identically for any thread count.
    {
        TraceSpan roundsSpan("bnb.rounds");
        std::vector<BnbPrefix> frontier(
            std::make_move_iterator(queue.begin()),
            std::make_move_iterator(queue.end()));
        // Most promising (lowest-bound) subtrees first; stable so
        // ties keep the deterministic enumeration order.
        std::stable_sort(frontier.begin(), frontier.end(),
                         [](const BnbPrefix &a, const BnbPrefix &b) {
                             return a.lb < b.lb;
                         });
        std::atomic<std::uint64_t> sharedIncumbent{
            doubleBits(incumbentValue())};

        while (!frontier.empty()) {
            std::vector<BnbPrefix> live;
            live.reserve(frontier.size());
            for (BnbPrefix &p : frontier) {
                if (inc.have && p.lb >= inc.wct - kPruneEps)
                    ++counters.prunedByBound;
                else
                    live.push_back(std::move(p));
            }
            frontier = std::move(live);
            if (frontier.empty())
                break;
            long long remaining =
                opts.maxNodes - counters.nodesExpanded;
            if (remaining <= 0)
                break;
            ++counters.rounds;

            // Hand out chunks in frontier order until the global
            // budget is spoken for; the sum of grants never exceeds
            // it, so nodesExpanded <= maxNodes is a hard invariant.
            std::size_t numTasks = 0;
            long long granted = 0;
            std::vector<long long> grant;
            while (numTasks < frontier.size() &&
                   granted < remaining) {
                long long g = std::min(frontier[numTasks].chunk,
                                       remaining - granted);
                grant.push_back(g);
                granted += g;
                ++numTasks;
            }

            sharedIncumbent.store(doubleBits(incumbentValue()),
                                  std::memory_order_relaxed);
            long long nodesBeforeRound = counters.nodesExpanded;
            std::vector<BnbSubtreeOutcome> outcomes(numTasks);
            parallelFor(
                numTasks,
                [&](std::size_t i) {
                    double snapshot =
                        doubleFromBits(sharedIncumbent.load(
                            std::memory_order_relaxed));
                    BnbScratch &scratch = threadLocalBnbScratch();
                    scratch.arena.reset();
                    BnbSubtreeSearch engine(ctx, machine, staticEarly,
                                            equivClass, numClasses,
                                            scratch.arena);
                    outcomes[i] =
                        engine.run(frontier[i], snapshot, grant[i]);
                },
                opts.threads);

            std::vector<BnbPrefix> next;
            next.reserve(frontier.size());
            for (std::size_t i = 0; i < numTasks; ++i) {
                absorb(outcomes[i]);
                if (outcomes[i].completed) {
                    ++counters.tasksCompleted;
                } else {
                    ++counters.tasksAborted;
                    BnbPrefix p = std::move(frontier[i]);
                    p.chunk *= 2;
                    next.push_back(std::move(p));
                }
            }
            for (std::size_t i = numTasks; i < frontier.size(); ++i)
                next.push_back(std::move(frontier[i]));
            frontier = std::move(next);

            // Live observers, fed between rounds only — the same
            // cadence as the incumbent snapshot above, so every
            // published tuple is a state the deterministic search
            // actually held. Never read back; pruning depends only
            // on sharedIncumbent.
            FlightRecorder::global().record(
                FlightEventType::BnbRound, "bnb",
                counters.nodesExpanded - nodesBeforeRound,
                counters.rounds);
            ProgressTracker &tracker = ProgressTracker::global();
            if (tracker.enabled()) {
                tracker.publishBnb(counters.nodesExpanded,
                                   counters.nodesExpanded -
                                       publishedNodes,
                                   counters.rounds,
                                   inc.have ? inc.wct : -1.0,
                                   req.staticLowerBound, false);
                publishedNodes = counters.nodesExpanded;
            }
        }
        for (BnbPrefix &p : frontier)
            abandoned.push_back(std::move(p));
    }

    // Phase 3: certificate. Exhausted means optimal. Otherwise the
    // optimum lives either at the incumbent or inside an abandoned
    // subtree, so min(incumbent, abandoned bounds) is a proven lower
    // bound; the static ladder floors it, which makes
    // RJ <= PW <= TW <= lowerBound <= wct monotone by construction.
    result.exhausted = abandoned.empty();
    if (!inc.have) {
        // Only reachable with seeding disabled and a starvation
        // budget: fall back to a cheap deterministic schedule so the
        // result always carries a feasible incumbent.
        CriticalPathScheduler fallback;
        offerSchedule(fallback.run(ctx, machine));
    }
    result.schedule = Schedule(sb.numOps());
    for (OpId v = 0; v < sb.numOps(); ++v)
        result.schedule.setIssue(v, inc.issue[std::size_t(v)]);
    result.wct = result.schedule.wct(sb);

    double lower = result.wct;
    if (!result.exhausted) {
        double unexplored = std::numeric_limits<double>::infinity();
        for (const BnbPrefix &p : abandoned)
            unexplored = std::min(unexplored, p.lb);
        lower = std::min(lower, unexplored);
    }
    lower = std::max(lower, req.staticLowerBound);
    lower = std::min(lower, result.wct);
    result.lowerBound = lower;
    result.proven = result.wct - result.lowerBound <= kProvenEps;
    {
        // Final publication: the certified result of this search.
        ProgressTracker &tracker = ProgressTracker::global();
        if (tracker.enabled())
            tracker.publishBnb(counters.nodesExpanded,
                               counters.nodesExpanded - publishedNodes,
                               counters.rounds, result.wct,
                               result.lowerBound, true);
    }
    return result;
}

} // namespace balance
