#include "sched/bnb/bnb_search.hh"

#include <algorithm>
#include <limits>

#include "support/diagnostics.hh"

namespace balance
{

namespace
{

/** Largest superblock the arena sizing accepts (readyBuf is O(n^2)). */
constexpr int kMaxBnbOps = 1024;
/** Pools per machine are tiny; fixed local arrays in the odometer. */
constexpr int kMaxBnbPools = 8;
/** Pruning tolerance, matching sched/optimal.cc. */
constexpr double kPruneEps = 1e-12;

} // namespace

BnbScratch &
threadLocalBnbScratch()
{
    thread_local BnbScratch scratch;
    return scratch;
}

std::vector<std::int32_t>
bnbEquivClasses(const Superblock &sb)
{
    int n = sb.numOps();
    std::vector<std::int32_t> cls(std::size_t(n), -1);

    // Key: operation class plus the exact successor (op, latency)
    // list. Identical keys mean the two operations impose identical
    // constraints on everything downstream and consume the same
    // pool slot, so they are interchangeable wherever both are ready.
    std::vector<std::vector<long long>> keys(static_cast<std::size_t>(n));
    std::vector<OpId> ids;
    for (OpId v = 0; v < n; ++v) {
        if (sb.op(v).isBranch())
            continue;
        std::vector<long long> &key = keys[std::size_t(v)];
        key.push_back((long long)(sb.op(v).cls));
        std::vector<std::pair<int, int>> succ;
        for (const Adjacent &e : sb.succs(v))
            succ.push_back({int(e.op), e.latency});
        std::sort(succ.begin(), succ.end());
        for (const auto &[op, lat] : succ) {
            key.push_back(op);
            key.push_back(lat);
        }
        ids.push_back(v);
    }
    std::sort(ids.begin(), ids.end(), [&](OpId a, OpId b) {
        if (keys[std::size_t(a)] != keys[std::size_t(b)])
            return keys[std::size_t(a)] < keys[std::size_t(b)];
        return a < b;
    });

    std::int32_t next = 0;
    for (std::size_t i = 0; i < ids.size();) {
        std::size_t j = i + 1;
        while (j < ids.size() &&
               keys[std::size_t(ids[j])] == keys[std::size_t(ids[i])])
            ++j;
        if (j - i > 1) {
            for (std::size_t k = i; k < j; ++k)
                cls[std::size_t(ids[k])] = next;
            ++next;
        }
        i = j;
    }
    return cls;
}

BnbSubtreeSearch::BnbSubtreeSearch(const GraphContext &ctx,
                                   const MachineModel &machine,
                                   std::span<const int> staticEarly,
                                   std::span<const std::int32_t> equivClass,
                                   int numClasses, ScratchArena &scratch)
    : sb(ctx.sb()), ctx(ctx), machine(machine), staticEarly(staticEarly),
      equivClass(equivClass), numOps(sb.numOps()),
      numPools(machine.numResources())
{
    bsAssert(numOps > 0 && numOps <= kMaxBnbOps,
             "bnb: superblock size out of range: ", numOps);
    bsAssert(numPools <= kMaxBnbPools, "bnb: too many pools");
    bsAssert(int(staticEarly.size()) == numOps &&
                 int(equivClass.size()) == numOps,
             "bnb: context arrays sized wrong");

    long long edges = 0;
    for (OpId v = 0; v < numOps; ++v)
        edges += (long long)(sb.succs(v).size());

    std::size_t n = std::size_t(numOps);
    std::size_t maxFrames = n + 2;
    std::size_t maxTake =
        std::size_t(std::min(numOps, machine.totalWidth()));

    issue = scratch.alloc<std::int32_t>(n);
    predsLeft = scratch.alloc<std::int32_t>(n);
    readyAt = scratch.alloc<std::int32_t>(n);
    sweep = scratch.alloc<std::int32_t>(n);
    perPool = scratch.alloc<std::int32_t>(std::size_t(numPools));
    frames = scratch.alloc<Frame>(maxFrames);
    readyBuf = scratch.alloc<std::int32_t>(maxFrames * n);
    groupBuf =
        scratch.alloc<std::int32_t>(maxFrames * std::size_t(numPools + 1));
    comboBuf = scratch.alloc<std::int32_t>(maxFrames * maxTake);
    chosenBuf = scratch.alloc<std::int32_t>(maxFrames * maxTake);
    undoBuf = scratch.alloc<Undo>(std::size_t(edges) + 2);
    classMark =
        scratch.alloc<std::int64_t>(std::size_t(std::max(numClasses, 1)));
    // The arena hands out uninitialized memory; the epoch scheme
    // needs a clean slate once per engine.
    std::fill(classMark.begin(), classMark.end(), std::int64_t(0));
}

void
BnbSubtreeSearch::materialize(const BnbPrefix &prefix)
{
    for (OpId v = 0; v < numOps; ++v)
        issue[std::size_t(v)] = -1;
    for (const auto &[op, cycle] : prefix.assign) {
        bsAssert(issue[std::size_t(op)] < 0, "bnb: duplicate assignment");
        issue[std::size_t(op)] = cycle;
    }
    scheduledCount = int(prefix.assign.size());
    for (OpId v = 0; v < numOps; ++v) {
        int left = 0;
        int at = 0;
        for (const Adjacent &p : sb.preds(v)) {
            if (issue[std::size_t(p.op)] < 0)
                ++left;
            else
                at = std::max(at,
                              issue[std::size_t(p.op)] + p.latency);
        }
        predsLeft[std::size_t(v)] = left;
        readyAt[std::size_t(v)] = at;
    }
    readyTop = 0;
    groupTop = 0;
    comboTop = 0;
    chosenTop = 0;
    undoTop = 0;
}

double
BnbSubtreeSearch::replayedWct() const
{
    // Branch order, so the float sum is one fixed sequence no matter
    // which search path originally produced the prefix.
    double w = 0.0;
    for (OpId b : sb.branches()) {
        if (issue[std::size_t(b)] >= 0)
            w += sb.exitProb(b) *
                 (issue[std::size_t(b)] + sb.op(b).latency);
    }
    return w;
}

int
BnbSubtreeSearch::nextDecisionCycle(int cycle) const
{
    int best = std::numeric_limits<int>::max();
    for (OpId v = 0; v < numOps; ++v) {
        if (issue[std::size_t(v)] < 0 &&
            predsLeft[std::size_t(v)] == 0) {
            best = std::min(best,
                            std::max(cycle, readyAt[std::size_t(v)]));
        }
    }
    bsAssert(best != std::numeric_limits<int>::max(),
             "bnb: stalled search with no pending operation");
    return best;
}

bool
BnbSubtreeSearch::pushFrame(int cycle, double wctAtEntry)
{
    bsAssert(std::size_t(depth) < frames.size(),
             "bnb: frame stack overflow");
    Frame &f = frames[std::size_t(depth)];
    f.cycle = cycle;
    f.wctAtEntry = wctAtEntry;
    f.readyBegin = readyTop;
    f.groupBegin = groupTop;

    // Counting sort of the ready set by pool: offsets first, then a
    // second ascending pass so each group stays in id order (the
    // dominance canonicalization relies on that).
    std::int32_t *off = &groupBuf[std::size_t(groupTop)];
    for (int p = 0; p <= numPools; ++p)
        off[p] = 0;
    for (OpId v = 0; v < numOps; ++v) {
        if (issue[std::size_t(v)] < 0 &&
            predsLeft[std::size_t(v)] == 0 &&
            readyAt[std::size_t(v)] <= cycle) {
            ++off[machine.poolOf(sb.op(v).cls) + 1];
        }
    }
    off[0] = readyTop;
    for (int p = 0; p < numPools; ++p)
        off[p + 1] += off[p];
    for (int p = 0; p < numPools; ++p)
        perPool[std::size_t(p)] = off[p];
    for (OpId v = 0; v < numOps; ++v) {
        if (issue[std::size_t(v)] < 0 &&
            predsLeft[std::size_t(v)] == 0 &&
            readyAt[std::size_t(v)] <= cycle) {
            int p = machine.poolOf(sb.op(v).cls);
            readyBuf[std::size_t(perPool[std::size_t(p)]++)] = v;
        }
    }
    bsAssert(off[numPools] > readyTop,
             "bnb: pushed frame with empty ready set");
    readyTop = off[numPools];
    groupTop += numPools + 1;

    std::int32_t totalTake = 0;
    for (int p = 0; p < numPools; ++p)
        totalTake += std::min(machine.width(p), off[p + 1] - off[p]);
    f.comboBegin = comboTop;
    f.chosenBegin = chosenTop;
    comboTop += totalTake;
    chosenTop += totalTake;
    f.undoBegin = undoTop;
    f.totalTake = totalTake;
    f.applied = 0;
    f.started = 0;
    ++depth;
    return true;
}

void
BnbSubtreeSearch::popFrame(const Frame &f)
{
    bsAssert(!f.applied, "bnb: popping an applied frame");
    readyTop = f.readyBegin;
    groupTop = f.groupBegin;
    comboTop = f.comboBegin;
    chosenTop = f.chosenBegin;
    undoTop = f.undoBegin;
    --depth;
}

bool
BnbSubtreeSearch::nextCombo(Frame &f)
{
    const std::int32_t *off = &groupBuf[std::size_t(f.groupBegin)];
    if (!f.started) {
        f.started = 1;
        std::int32_t at = f.comboBegin;
        for (int p = 0; p < numPools; ++p) {
            int take = std::min(machine.width(p), off[p + 1] - off[p]);
            for (int i = 0; i < take; ++i)
                comboBuf[std::size_t(at + i)] = i;
            at += take;
        }
        return true;
    }

    std::int32_t base[kMaxBnbPools];
    int take[kMaxBnbPools];
    int gsize[kMaxBnbPools];
    std::int32_t at = f.comboBegin;
    for (int p = 0; p < numPools; ++p) {
        gsize[p] = off[p + 1] - off[p];
        take[p] = std::min(machine.width(p), gsize[p]);
        base[p] = at;
        at += take[p];
    }
    for (int p = numPools - 1; p >= 0; --p) {
        std::int32_t *idx = &comboBuf[std::size_t(base[p])];
        int t = take[p];
        int i = t - 1;
        while (i >= 0 && idx[i] == gsize[p] - t + i)
            --i;
        if (i < 0)
            continue; // this pool's combinations are exhausted
        ++idx[i];
        for (int k = i + 1; k < t; ++k)
            idx[k] = idx[k - 1] + 1;
        for (int q = p + 1; q < numPools; ++q) {
            std::int32_t *reset = &comboBuf[std::size_t(base[q])];
            for (int k = 0; k < take[q]; ++k)
                reset[k] = k;
        }
        return true;
    }
    return false;
}

bool
BnbSubtreeSearch::comboDominated(const Frame &f)
{
    ++classEpoch;
    const std::int32_t *off = &groupBuf[std::size_t(f.groupBegin)];
    std::int32_t base = f.comboBegin;
    for (int p = 0; p < numPools; ++p) {
        int g = off[p + 1] - off[p];
        int t = std::min(machine.width(p), g);
        if (t > 0 && t < g) {
            const std::int32_t *idx = &comboBuf[std::size_t(base)];
            int ci = 0;
            for (int pos = 0; pos < g; ++pos) {
                OpId v = readyBuf[std::size_t(off[p] + pos)];
                std::int32_t c = equivClass[std::size_t(v)];
                if (ci < t && idx[ci] == pos) {
                    ++ci;
                    // A ready lower-id twin was skipped: swapping it
                    // in yields the same WCT, and that combination
                    // is enumerated anyway.
                    if (c >= 0 &&
                        classMark[std::size_t(c)] == classEpoch)
                        return true;
                } else if (c >= 0) {
                    classMark[std::size_t(c)] = classEpoch;
                }
            }
        }
        base += t;
    }
    return false;
}

double
BnbSubtreeSearch::applyChoice(Frame &f)
{
    bsAssert(!f.applied && undoTop == f.undoBegin,
             "bnb: double apply");
    const std::int32_t *off = &groupBuf[std::size_t(f.groupBegin)];
    std::int32_t comboAt = f.comboBegin;
    std::int32_t chosenAt = f.chosenBegin;
    for (int p = 0; p < numPools; ++p) {
        int take = std::min(machine.width(p), off[p + 1] - off[p]);
        for (int i = 0; i < take; ++i) {
            chosenBuf[std::size_t(chosenAt++)] =
                readyBuf[std::size_t(
                    off[p] + comboBuf[std::size_t(comboAt + i)])];
        }
        comboAt += take;
    }

    double w = f.wctAtEntry;
    int cycle = f.cycle;
    for (std::int32_t i = f.chosenBegin;
         i < f.chosenBegin + f.totalTake; ++i) {
        OpId v = chosenBuf[std::size_t(i)];
        issue[std::size_t(v)] = cycle;
        ++scheduledCount;
        const Operation &op = sb.op(v);
        if (op.isBranch())
            w += sb.exitProb(v) * (cycle + op.latency);
        for (const Adjacent &e : sb.succs(v)) {
            --predsLeft[std::size_t(e.op)];
            undoBuf[std::size_t(undoTop++)] = {
                e.op, readyAt[std::size_t(e.op)]};
            readyAt[std::size_t(e.op)] =
                std::max(readyAt[std::size_t(e.op)],
                         cycle + e.latency);
        }
    }
    f.applied = 1;
    return w;
}

void
BnbSubtreeSearch::undoChoice(Frame &f)
{
    // Reverse order: when several applied edges targeted the same
    // successor, the earliest log entry holds the true prior value
    // and must win the restore.
    for (std::int32_t i = undoTop - 1; i >= f.undoBegin; --i)
        readyAt[std::size_t(undoBuf[std::size_t(i)].op)] =
            undoBuf[std::size_t(i)].prevReadyAt;
    undoTop = f.undoBegin;
    for (std::int32_t i = f.chosenBegin + f.totalTake - 1;
         i >= f.chosenBegin; --i) {
        OpId v = chosenBuf[std::size_t(i)];
        issue[std::size_t(v)] = -1;
        --scheduledCount;
        for (const Adjacent &e : sb.succs(v))
            ++predsLeft[std::size_t(e.op)];
    }
    f.applied = 0;
}

double
BnbSubtreeSearch::lowerBound(int cycle, double scheduledWct)
{
    // Dependence sweep over unscheduled operations (ids are
    // topological, so predecessors are already final), floored by
    // the static per-op issue bounds (EarlyRC when available).
    for (OpId v = 0; v < numOps; ++v) {
        if (issue[std::size_t(v)] >= 0)
            continue;
        int e = std::max(cycle, readyAt[std::size_t(v)]);
        e = std::max(e, staticEarly[std::size_t(v)]);
        for (const Adjacent &p : sb.preds(v)) {
            if (issue[std::size_t(p.op)] < 0)
                e = std::max(e, sweep[std::size_t(p.op)] + p.latency);
        }
        sweep[std::size_t(v)] = e;
    }

    double lb = scheduledWct;
    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        OpId b = sb.branches()[std::size_t(bi)];
        if (issue[std::size_t(b)] >= 0)
            continue;
        int depLb = sweep[std::size_t(b)];

        // Slot counting per pool over b's unscheduled closure, as in
        // sched/optimal.cc.
        const std::vector<int> &height = ctx.heightToBranch(bi);
        for (int r = 0; r < numPools; ++r)
            perPool[std::size_t(r)] = 0;
        for (OpId v = 0; v <= b; ++v) {
            if (height[std::size_t(v)] < 0 ||
                issue[std::size_t(v)] >= 0)
                continue;
            ++perPool[std::size_t(machine.poolOf(sb.op(v).cls))];
        }
        int resLb = cycle;
        for (int r = 0; r < numPools; ++r) {
            int n = perPool[std::size_t(r)];
            if (n == 0)
                continue;
            int width = machine.width(r);
            int extra =
                n <= width ? 0 : (n - width + width - 1) / width;
            resLb = std::max(resLb, cycle + extra);
        }
        lb += sb.exitProb(b) *
              (std::max(depLb, resLb) + sb.op(b).latency);
    }
    return lb;
}

BnbSubtreeOutcome
BnbSubtreeSearch::run(const BnbPrefix &prefix, double incumbentWct,
                      long long nodeBudget)
{
    BnbSubtreeOutcome out;
    materialize(prefix);

    bool haveRef = incumbentWct >= 0.0;
    double ref = haveRef ? incumbentWct : 0.0;
    auto offerLeaf = [&](double w) {
        if (haveRef && w >= ref)
            return;
        haveRef = true;
        ref = w;
        out.haveBest = true;
        out.bestWct = w;
        out.bestIssue.assign(issue.begin(), issue.end());
        ++out.stats.incumbentUpdates;
    };

    if (scheduledCount == numOps) {
        offerLeaf(replayedWct());
        out.completed = true;
        return out;
    }

    int dc = nextDecisionCycle(prefix.nextCycle);
    pushFrame(dc, replayedWct());
    bool aborted = false;
    while (depth > 0) {
        Frame &f = frames[std::size_t(depth - 1)];
        if (f.applied)
            undoChoice(f);
        if (!nextCombo(f)) {
            popFrame(f);
            continue;
        }
        if (comboDominated(f)) {
            ++out.stats.prunedDominance;
            continue;
        }
        double w = applyChoice(f);
        ++out.stats.nodes;
        bool leaf = scheduledCount == numOps;
        if (leaf)
            offerLeaf(w);
        if (out.stats.nodes >= nodeBudget) {
            aborted = true;
            break;
        }
        if (leaf)
            continue;
        int dc2 = nextDecisionCycle(f.cycle + 1);
        double lb = lowerBound(dc2, w);
        if (haveRef && lb >= ref - kPruneEps) {
            ++out.stats.prunedBound;
            continue;
        }
        pushFrame(dc2, w);
    }
    out.completed = !aborted;
    return out;
}

BnbSubtreeOutcome
BnbSubtreeSearch::splitChildren(const BnbPrefix &prefix,
                                double incumbentWct,
                                long long nodeBudget,
                                std::vector<BnbPrefix> &out)
{
    BnbSubtreeOutcome outcome;
    outcome.completed = true;
    materialize(prefix);

    bool haveRef = incumbentWct >= 0.0;
    double ref = haveRef ? incumbentWct : 0.0;
    auto offerLeaf = [&](double w) {
        if (haveRef && w >= ref)
            return;
        haveRef = true;
        ref = w;
        outcome.haveBest = true;
        outcome.bestWct = w;
        outcome.bestIssue.assign(issue.begin(), issue.end());
        ++outcome.stats.incumbentUpdates;
    };

    if (scheduledCount == numOps) {
        offerLeaf(replayedWct());
        return outcome;
    }

    int dc = nextDecisionCycle(prefix.nextCycle);
    pushFrame(dc, replayedWct());
    Frame &f = frames[0];
    while (true) {
        if (f.applied)
            undoChoice(f);
        if (!nextCombo(f))
            break;
        if (comboDominated(f)) {
            ++outcome.stats.prunedDominance;
            continue;
        }
        double w = applyChoice(f);
        ++outcome.stats.nodes;
        bool leaf = scheduledCount == numOps;
        if (leaf)
            offerLeaf(w);
        if (outcome.stats.nodes >= nodeBudget) {
            // Mid-enumeration cut: the caller discards the emitted
            // children and keeps the whole prefix as abandoned.
            outcome.completed = false;
            break;
        }
        if (leaf)
            continue;
        int dc2 = nextDecisionCycle(f.cycle + 1);
        double lb = lowerBound(dc2, w);
        if (haveRef && lb >= ref - kPruneEps) {
            ++outcome.stats.prunedBound;
            continue;
        }
        BnbPrefix child;
        child.assign = prefix.assign;
        for (std::int32_t i = f.chosenBegin;
             i < f.chosenBegin + f.totalTake; ++i)
            child.assign.push_back(
                {chosenBuf[std::size_t(i)], f.cycle});
        child.nextCycle = f.cycle + 1;
        child.lb = lb;
        out.push_back(std::move(child));
    }
    if (f.applied)
        undoChoice(f);
    popFrame(f);
    return outcome;
}

} // namespace balance
