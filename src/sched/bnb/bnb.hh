/**
 * @file
 * Parallel branch-and-bound WCT minimization with certified gaps.
 *
 * Where sched/optimal.hh certifies only tiny (<= 12 op) instances by
 * recursive exhaustion, this engine scales the same schedule space —
 * cycle-by-cycle maximal resource-feasible subsets of the ready set,
 * zero-latency edges serialized to the next cycle — to 50-100-op
 * superblocks: a non-recursive DFS over array-ized frames in a
 * per-worker ScratchArena, dominance pruning over interchangeable
 * operations, lower-bound pruning strengthened by the BoundsToolkit's
 * EarlyRC floors, and a Best/Balance incumbent to start from.
 *
 * When the node budget runs out before exhaustion, the result is
 * still a *certificate*: `lowerBound` is a proven lower bound on the
 * optimum (the minimum over the incumbent and every abandoned
 * subtree's root bound, floored by the static RJ/PW/TW ladder), so
 * reports can say "within gap <= eps of optimal" instead of
 * "vs. bound".
 *
 * Determinism contract: the returned schedule, WCT, lower bound and
 * every counter are bitwise identical for any `threads` value.
 * Subtrees are split deterministically, every task of a round prunes
 * against the same incumbent snapshot (published through a shared
 * atomic that is written only between rounds), and outcomes merge in
 * task order — the same slots-then-serial-fold pattern the rest of
 * the library uses (docs/THREADING.md). Pinned by
 * tests/integration/bnb_determinism_test.
 */

#ifndef BALANCE_SCHED_BNB_BNB_HH
#define BALANCE_SCHED_BNB_BNB_HH

#include <string>

#include "bounds/superblock_bounds.hh"
#include "graph/analysis.hh"
#include "machine/machine_model.hh"
#include "sched/schedule.hh"

namespace balance
{

/** Search limits and parallel shape for bnbSchedule(). */
struct BnbOptions
{
    /**
     * Global node budget across splitting and every worker task; the
     * search never expands more nodes than this (pinned by the
     * property test), degrading to a gap certificate instead.
     */
    long long maxNodes = 2000000;
    /**
     * Node budget one task receives per round. A task that exhausts
     * its chunk is requeued with a doubled chunk, so a stubborn
     * subtree costs at most 2x its sequential node count.
     */
    long long taskChunk = 25000;
    /**
     * Serial breadth-first splitting stops once the frontier holds
     * at least this many subproblems. Independent of the thread
     * count, so the task decomposition — and therefore every result
     * byte — is too.
     */
    int splitTarget = 64;
    /** Worker count; 0 = hardware concurrency, 1 = serial. */
    int threads = 0;
    /**
     * Seed the incumbent with the Best envelope (primaries + combo
     * grid) before searching. Off only in tests that exercise the
     * pure search; without a seed the first leaf found becomes the
     * incumbent.
     */
    bool seedWithBest = true;
};

/**
 * Borrowed context for one bnbSchedule() call. Everything optional:
 * the toolkit lends EarlyRC floors to the per-node bound (else the
 * dependence-only early times are used), the seed schedule replaces
 * the internally computed Best incumbent, and the static lower bound
 * (typically WctBounds::tightest()) floors the certificate so the
 * ladder RJ <= PW <= TW <= lowerBound <= wct is monotone by
 * construction.
 */
struct BnbRequest
{
    const BoundsToolkit *toolkit = nullptr;
    const Schedule *seedSchedule = nullptr;
    double staticLowerBound = 0.0;
};

/**
 * Search accounting. All values are deterministic for a given
 * (superblock, machine, options) triple — including across thread
 * counts — so they can be folded into the MetricRegistry and gated
 * zero-tolerance in CI (tools/perf_budgets.json).
 */
struct BnbCounters
{
    long long nodesExpanded = 0;     //!< choices applied (split + DFS)
    long long prunedByBound = 0;     //!< subtrees cut by the lower bound
    long long prunedByDominance = 0; //!< combos cut by interchangeability
    long long incumbentUpdates = 0;  //!< improving leaves found
    long long tasksCompleted = 0;    //!< subtree tasks run to exhaustion
    long long tasksAborted = 0;      //!< tasks that hit their chunk
    long long rounds = 0;            //!< parallel rounds executed
};

/** Outcome of one branch-and-bound run. */
struct BnbResult
{
    Schedule schedule;       //!< best complete schedule found
    double wct = 0.0;        //!< its weighted completion time
    double lowerBound = 0.0; //!< certified lower bound on the optimum
    /** True when the optimum is certified (gap() <= 1e-9). */
    bool proven = false;
    /** True when the search space was exhausted (no budget cut). */
    bool exhausted = false;
    BnbCounters counters;

    /** @return the certified optimality gap, wct - lowerBound. */
    double
    gap() const
    {
        return wct - lowerBound;
    }

    /**
     * Canonical one-line JSON certificate (result values plus every
     * counter). Byte-identical across thread counts; the determinism
     * test compares certificates, not individual fields.
     */
    std::string certificate() const;
};

/**
 * Branch-and-bound WCT minimization over the same schedule space
 * optimalSchedule() explores (they agree exactly on instances both
 * certify — pinned by tests/integration/differential_small_test).
 *
 * @param ctx Analysis context. Lazily cached analyses are touched
 *        only before the parallel phase; concurrent tasks read only
 *        eager state.
 * @param machine Resource widths.
 * @param opts Budgets and parallel shape.
 * @param req Borrowed toolkit / seed / certificate floor.
 */
BnbResult bnbSchedule(const GraphContext &ctx,
                      const MachineModel &machine,
                      const BnbOptions &opts = {},
                      const BnbRequest &req = {});

} // namespace balance

#endif // BALANCE_SCHED_BNB_BNB_HH
