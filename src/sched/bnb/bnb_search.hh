/**
 * @file
 * The sequential subtree engine under bnbSchedule(): a non-recursive
 * depth-first search whose entire mutable state — frame stack, ready
 * lists, combination odometers, chosen sets, undo log — lives in
 * flat arrays carved from a per-worker ScratchArena, so a task
 * allocates nothing after its first superblock and an abandoned
 * subtree unwinds by resetting the arena.
 *
 * A subproblem (BnbPrefix) is a replayable prefix of (op, cycle)
 * assignments plus the lower bound certified for its subtree; the
 * orchestrator splits the root into prefixes serially, fans them out
 * as tasks, and keeps the bound of every subtree it abandons as the
 * gap certificate. Everything here is deterministic: enumeration
 * order is fixed by operation id, and the engine never reads shared
 * mutable state (the incumbent it prunes against is a per-call
 * parameter).
 */

#ifndef BALANCE_SCHED_BNB_BNB_SEARCH_HH
#define BALANCE_SCHED_BNB_BNB_SEARCH_HH

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/analysis.hh"
#include "machine/machine_model.hh"
#include "support/arena.hh"

namespace balance
{

/** One subproblem: a replayable path from the root. */
struct BnbPrefix
{
    /** (operation, issue cycle) assignments, in application order. */
    std::vector<std::pair<OpId, int>> assign;
    /** First cycle the subtree may issue in (parent cycle + 1). */
    int nextCycle = 0;
    /** Certified lower bound for the whole subtree. */
    double lb = 0.0;
    /** Node chunk for the next attempt (doubled after an abort). */
    long long chunk = 0;
};

/** Per-run accounting, summed serially by the orchestrator. */
struct BnbSearchStats
{
    long long nodes = 0;
    long long prunedBound = 0;
    long long prunedDominance = 0;
    long long incumbentUpdates = 0;
};

/** What one subtree exploration produced. */
struct BnbSubtreeOutcome
{
    /** True when the subtree was exhausted within the node budget. */
    bool completed = false;
    bool haveBest = false;
    double bestWct = 0.0;
    /** Issue cycles of the best leaf (numOps entries). */
    std::vector<int> bestIssue;
    BnbSearchStats stats;
};

/**
 * Per-worker scratch for the engine: one arena reused across tasks.
 * Thread-local by convention (threadLocalBnbScratch()), never shared.
 */
struct BnbScratch
{
    ScratchArena arena{std::size_t(1) << 16};
};

/** @return the calling thread's engine scratch. */
BnbScratch &threadLocalBnbScratch();

/**
 * Group interchangeable operations: two non-branch operations with
 * the same class and identical successor (op, latency) lists occupy
 * the same equivalence class, and a combination that schedules a
 * member while skipping a ready lower-id member of the same class is
 * dominated (swapping the two yields an equal-WCT schedule the
 * search visits anyway). Branches are never grouped (class -1).
 *
 * @return per-operation class ids, -1 for ungrouped operations.
 */
std::vector<std::int32_t> bnbEquivClasses(const Superblock &sb);

/**
 * The iterative engine. One instance explores subtrees of a single
 * (superblock, machine) pair; all working memory comes from the
 * arena passed at construction (reset it first — construction sizes
 * every buffer for the superblock).
 */
class BnbSubtreeSearch
{
  public:
    /**
     * @param ctx Analysis context (eager state only is read).
     * @param machine Resource widths.
     * @param staticEarly Per-operation issue floors valid in any
     *        complete schedule (EarlyRC when a toolkit is available,
     *        else the dependence-only early times).
     * @param equivClass bnbEquivClasses() for ctx.sb().
     * @param numClasses 1 + max class id (0 when none).
     * @param scratch The worker's arena; reset before constructing.
     */
    BnbSubtreeSearch(const GraphContext &ctx, const MachineModel &machine,
                     std::span<const int> staticEarly,
                     std::span<const std::int32_t> equivClass,
                     int numClasses, ScratchArena &scratch);

    /**
     * Exhaust (or abandon at @p nodeBudget) the subtree under
     * @p prefix, pruning against @p incumbentWct (< 0 = none) and
     * any better leaf found along the way.
     */
    BnbSubtreeOutcome run(const BnbPrefix &prefix, double incumbentWct,
                          long long nodeBudget);

    /**
     * Expand @p prefix's root exactly one level: leaves update the
     * outcome's best, bound/dominance cuts are counted, and every
     * surviving child is appended to @p out in enumeration order
     * with its certified bound. Used by the serial splitter. Stops
     * early (outcome.completed = false, children discarded by the
     * caller) when @p nodeBudget is reached mid-enumeration.
     */
    BnbSubtreeOutcome splitChildren(const BnbPrefix &prefix,
                                    double incumbentWct,
                                    long long nodeBudget,
                                    std::vector<BnbPrefix> &out);

  private:
    struct Frame
    {
        std::int32_t cycle;
        double wctAtEntry;
        std::int32_t readyBegin;  //!< ready ops, pool-major
        std::int32_t groupBegin;  //!< R+1 offsets into readyBuf
        std::int32_t comboBegin;  //!< odometer indices, pool-major
        std::int32_t chosenBegin; //!< applied ops (totalTake of them)
        std::int32_t undoBegin;   //!< readyAt undo log start
        std::int32_t totalTake;
        std::uint8_t applied;
        std::uint8_t started;
    };

    void materialize(const BnbPrefix &prefix);
    int nextDecisionCycle(int cycle) const;
    bool pushFrame(int cycle, double wctAtEntry);
    void popFrame(const Frame &f);
    bool nextCombo(Frame &f);
    bool comboDominated(const Frame &f);
    double applyChoice(Frame &f);
    void undoChoice(Frame &f);
    double lowerBound(int cycle, double scheduledWct);
    double replayedWct() const;

    const Superblock &sb;
    const GraphContext &ctx;
    const MachineModel &machine;
    std::span<const int> staticEarly;
    std::span<const std::int32_t> equivClass;

    int numOps;
    int numPools;

    // Per-operation state.
    std::span<std::int32_t> issue;
    std::span<std::int32_t> predsLeft;
    std::span<std::int32_t> readyAt;
    std::span<std::int32_t> sweep; //!< lowerBound() dependence sweep
    std::span<std::int32_t> perPool;

    // Frame stack and its side buffers (offset stacks; each frame
    // records its begin offsets and pop rewinds the tops).
    std::span<Frame> frames;
    std::span<std::int32_t> readyBuf;
    std::span<std::int32_t> groupBuf;
    std::span<std::int32_t> comboBuf;
    std::span<std::int32_t> chosenBuf;
    struct Undo
    {
        std::int32_t op;
        std::int32_t prevReadyAt;
    };
    std::span<Undo> undoBuf;

    // Dominance epoch marking: one slot per equivalence class.
    std::span<std::int64_t> classMark;
    std::int64_t classEpoch = 0;

    int depth = 0; //!< live frames on the stack
    std::int32_t readyTop = 0;
    std::int32_t groupTop = 0;
    std::int32_t comboTop = 0;
    std::int32_t chosenTop = 0;
    std::int32_t undoTop = 0;
    int scheduledCount = 0;
};

} // namespace balance

#endif // BALANCE_SCHED_BNB_BNB_SEARCH_HH
