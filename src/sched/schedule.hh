/**
 * @file
 * The result of scheduling a superblock: an issue cycle for every
 * operation, plus validation against dependence and resource
 * constraints and the weighted-completion-time objective
 * (Section 2).
 */

#ifndef BALANCE_SCHED_SCHEDULE_HH
#define BALANCE_SCHED_SCHEDULE_HH

#include <string>
#include <vector>

#include "graph/superblock.hh"
#include "machine/machine_model.hh"

namespace balance
{

/**
 * Issue-cycle assignment for one superblock. A fresh Schedule has
 * every operation unscheduled (cycle -1).
 */
class Schedule
{
  public:
    Schedule() = default;

    /** Create an all-unscheduled schedule for @p numOps operations. */
    explicit Schedule(int numOps)
        : issue(std::size_t(numOps), -1)
    {}

    /** @return the number of operations this schedule covers. */
    int numOps() const { return int(issue.size()); }

    /** @return the issue cycle of @p op, or -1 when unscheduled. */
    int
    issueOf(OpId op) const
    {
        return issue[std::size_t(op)];
    }

    /** @return true when @p op has an issue cycle. */
    bool
    isScheduled(OpId op) const
    {
        return issue[std::size_t(op)] >= 0;
    }

    /** Assign @p cycle to @p op (op must be unscheduled). */
    void setIssue(OpId op, int cycle);

    /** @return true when every operation has an issue cycle. */
    bool complete() const;

    /** @return 1 + the largest issue cycle (0 when empty). */
    int makespan() const;

    /**
     * Weighted completion time:
     * sum over branches b of exitProb(b) * (issue(b) + latency(b)).
     * All branches must be scheduled.
     */
    double wct(const Superblock &sb) const;

    /**
     * Check that the schedule is complete and respects every
     * dependence latency and per-cycle resource limit; panics on
     * violation. Every scheduler's output funnels through this in
     * tests, so a buggy heuristic cannot silently report good
     * numbers.
     */
    void validate(const Superblock &sb, const MachineModel &machine) const;

    /**
     * Render as a cycle-by-cycle table, branches annotated with
     * their exit probabilities. For examples and debugging.
     */
    std::string render(const Superblock &sb,
                       const MachineModel &machine) const;

  private:
    std::vector<int> issue;
};

} // namespace balance

#endif // BALANCE_SCHED_SCHEDULE_HH
