#include "sched/optimal.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace balance
{

namespace
{

/** Mutable search state shared across the recursion. */
class Search
{
  public:
    Search(const GraphContext &ctx, const MachineModel &machine,
           const OptimalOptions &opts)
        : ctx(ctx), sb(ctx.sb()), machine(machine), opts(opts),
          issue(std::size_t(sb.numOps()), -1),
          predsLeft(std::size_t(sb.numOps()), 0),
          readyAt(std::size_t(sb.numOps()), 0)
    {
        // Zero-latency edges (anti dependences from the CFG former)
        // are conservatively serialized: the consumer issues at
        // least one cycle later, exactly as the list schedulers
        // treat them, so the search explores the same schedule
        // space the heuristics do.
        for (OpId v = 0; v < sb.numOps(); ++v)
            predsLeft[std::size_t(v)] = int(sb.preds(v).size());
        if (opts.seedWct > 0.0)
            bestWct = opts.seedWct + 1e-9;
    }

    OptimalResult
    solve()
    {
        exhausted = true;
        expand(0, 0.0);

        OptimalResult result;
        result.nodes = nodes;
        result.proven = exhausted;
        if (haveBest) {
            result.schedule = Schedule(sb.numOps());
            for (OpId v = 0; v < sb.numOps(); ++v)
                result.schedule.setIssue(v, bestIssue[std::size_t(v)]);
            result.wct = result.schedule.wct(sb);
        }
        return result;
    }

  private:
    /** Lower bound on total WCT from this partial state at @p cycle. */
    double
    lowerBound(int cycle, double scheduledWct,
               const std::vector<int> &freeNow) const
    {
        // Dependence sweep over unscheduled operations.
        std::vector<int> e(std::size_t(sb.numOps()), 0);
        for (OpId v = 0; v < sb.numOps(); ++v) {
            if (issue[std::size_t(v)] >= 0)
                continue;
            e[std::size_t(v)] = std::max(cycle, readyAt[std::size_t(v)]);
            for (const Adjacent &p : sb.preds(v)) {
                if (issue[std::size_t(p.op)] < 0) {
                    e[std::size_t(v)] =
                        std::max(e[std::size_t(v)],
                                 e[std::size_t(p.op)] + p.latency);
                }
            }
        }

        double lb = scheduledWct;
        for (int bi = 0; bi < sb.numBranches(); ++bi) {
            OpId b = sb.branches()[std::size_t(bi)];
            if (issue[std::size_t(b)] >= 0)
                continue;
            int depLb = e[std::size_t(b)];

            // Slot counting per pool over b's unscheduled closure.
            const std::vector<int> &height = ctx.heightToBranch(bi);
            std::vector<int> perPool(
                std::size_t(machine.numResources()), 0);
            for (OpId v = 0; v <= b; ++v) {
                if (height[std::size_t(v)] < 0 ||
                    issue[std::size_t(v)] >= 0) {
                    continue;
                }
                ++perPool[std::size_t(machine.poolOf(sb.op(v).cls))];
            }
            int resLb = cycle;
            for (int r = 0; r < machine.numResources(); ++r) {
                int n = perPool[std::size_t(r)];
                if (n == 0)
                    continue;
                int free0 = freeNow[std::size_t(r)];
                int extra = n <= free0
                    ? 0
                    : (n - free0 + machine.width(r) - 1) /
                          machine.width(r);
                // b itself counts among the ops placed, so its issue
                // is at least the cycle holding the last of them.
                resLb = std::max(resLb, cycle + extra);
            }
            lb += sb.exitProb(b) *
                  (std::max(depLb, resLb) + sb.op(b).latency);
        }
        return lb;
    }

    void
    expand(int cycle, double scheduledWct)
    {
        if (nodes >= opts.maxNodes) {
            exhausted = false;
            return;
        }
        ++nodes;

        if (scheduledCount == sb.numOps()) {
            if (!haveBest || scheduledWct < bestWct) {
                bestWct = scheduledWct;
                bestIssue = issue;
                haveBest = true;
            }
            return;
        }

        std::vector<int> freeNow(std::size_t(machine.numResources()));
        for (int r = 0; r < machine.numResources(); ++r)
            freeNow[std::size_t(r)] = machine.width(r);

        if (haveBest || bestWct > 0.0) {
            double lb = lowerBound(cycle, scheduledWct, freeNow);
            if (haveBest && lb >= bestWct - 1e-12)
                return;
            if (!haveBest && bestWct > 0.0 && lb >= bestWct)
                return;
        }

        // Ready operations, grouped by pool.
        std::vector<std::vector<OpId>> readyByPool(
            std::size_t(machine.numResources()));
        for (OpId v = 0; v < sb.numOps(); ++v) {
            if (issue[std::size_t(v)] < 0 &&
                predsLeft[std::size_t(v)] == 0 &&
                readyAt[std::size_t(v)] <= cycle) {
                readyByPool[std::size_t(machine.poolOf(sb.op(v).cls))]
                    .push_back(v);
            }
        }

        bool anyReady = false;
        for (auto &g : readyByPool)
            anyReady = anyReady || !g.empty();
        if (!anyReady) {
            // Nothing can issue; jump to the next cycle where
            // something becomes ready.
            int next = -1;
            for (OpId v = 0; v < sb.numOps(); ++v) {
                if (issue[std::size_t(v)] < 0 &&
                    predsLeft[std::size_t(v)] == 0) {
                    int at = readyAt[std::size_t(v)];
                    next = next < 0 ? at : std::min(next, at);
                }
            }
            bsAssert(next > cycle, "stalled search with no pending op");
            expand(next, scheduledWct);
            return;
        }

        // Enumerate the cross product over pools of all maximal
        // subsets (exactly min(width, ready) operations per pool).
        std::vector<OpId> chosen;
        enumeratePools(readyByPool, 0, chosen, cycle, scheduledWct);
    }

    void
    enumeratePools(const std::vector<std::vector<OpId>> &readyByPool,
                   int pool, std::vector<OpId> &chosen, int cycle,
                   double scheduledWct)
    {
        if (pool == machine.numResources()) {
            applyAndRecurse(chosen, cycle, scheduledWct);
            return;
        }
        const auto &group = readyByPool[std::size_t(pool)];
        int take = std::min<int>(machine.width(pool), int(group.size()));
        if (take == 0) {
            enumeratePools(readyByPool, pool + 1, chosen, cycle,
                           scheduledWct);
            return;
        }
        std::vector<int> idx(std::size_t(take), 0);
        for (int i = 0; i < take; ++i)
            idx[std::size_t(i)] = i;
        while (true) {
            std::size_t base = chosen.size();
            for (int i : idx)
                chosen.push_back(group[std::size_t(i)]);
            enumeratePools(readyByPool, pool + 1, chosen, cycle,
                           scheduledWct);
            chosen.resize(base);

            // Next combination of indices.
            int i = take - 1;
            while (i >= 0 &&
                   idx[std::size_t(i)] == int(group.size()) - take + i) {
                --i;
            }
            if (i < 0)
                break;
            ++idx[std::size_t(i)];
            for (int k = i + 1; k < take; ++k)
                idx[std::size_t(k)] = idx[std::size_t(k - 1)] + 1;
        }
    }

    void
    applyAndRecurse(const std::vector<OpId> &chosen, int cycle,
                    double scheduledWct)
    {
        double wct = scheduledWct;
        for (OpId v : chosen) {
            issue[std::size_t(v)] = cycle;
            ++scheduledCount;
            if (sb.op(v).isBranch())
                wct += sb.exitProb(v) * (cycle + sb.op(v).latency);
            for (const Adjacent &e : sb.succs(v)) {
                --predsLeft[std::size_t(e.op)];
                readyAt[std::size_t(e.op)] =
                    std::max(readyAt[std::size_t(e.op)],
                             cycle + e.latency);
            }
        }

        expand(cycle + 1, wct);

        for (OpId v : chosen) {
            issue[std::size_t(v)] = -1;
            --scheduledCount;
            for (const Adjacent &e : sb.succs(v))
                ++predsLeft[std::size_t(e.op)];
        }
        // readyAt is monotone per op and recomputed lazily: restore
        // by recomputation from scheduled preds.
        for (OpId v : chosen) {
            for (const Adjacent &e : sb.succs(v)) {
                int at = 0;
                for (const Adjacent &p : sb.preds(e.op)) {
                    if (issue[std::size_t(p.op)] >= 0) {
                        at = std::max(at, issue[std::size_t(p.op)] +
                                              p.latency);
                    }
                }
                readyAt[std::size_t(e.op)] = at;
            }
        }
    }

    const GraphContext &ctx;
    const Superblock &sb;
    const MachineModel &machine;
    OptimalOptions opts;

    std::vector<int> issue;
    std::vector<int> predsLeft;
    std::vector<int> readyAt;
    int scheduledCount = 0;

    std::vector<int> bestIssue;
    double bestWct = 0.0;
    bool haveBest = false;
    bool exhausted = true;
    long long nodes = 0;
};

} // namespace

OptimalResult
optimalSchedule(const GraphContext &ctx, const MachineModel &machine,
                const OptimalOptions &opts)
{
    Search search(ctx, machine, opts);
    return search.solve();
}

} // namespace balance
