#include "sched/priorities.hh"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hh"
#include "support/simd_kernels.hh"

namespace balance
{

std::vector<double>
criticalPathKey(const GraphContext &ctx)
{
    const Superblock &sb = ctx.sb();
    std::vector<int> down(std::size_t(sb.numOps()), 0);
    for (OpId v = OpId(sb.numOps()) - 1; v >= 0; --v) {
        for (const Adjacent &e : sb.succs(v)) {
            down[std::size_t(v)] =
                std::max(down[std::size_t(v)],
                         down[std::size_t(e.op)] + e.latency);
        }
    }
    return {down.begin(), down.end()};
}

std::vector<double>
successiveRetirementKey(const GraphContext &ctx)
{
    const Superblock &sb = ctx.sb();
    std::vector<double> cp = criticalPathKey(ctx);
    double cpMax = *std::max_element(cp.begin(), cp.end());
    // Earlier blocks strictly dominate: the block tier is scaled
    // past any possible Critical Path key value.
    double tierStep = cpMax + 1.0;
    std::vector<double> key(std::size_t(sb.numOps()));
    for (OpId v = 0; v < sb.numOps(); ++v) {
        double tier = double(sb.numBlocks() - sb.op(v).block);
        key[std::size_t(v)] = tier * tierStep + cp[std::size_t(v)];
    }
    return key;
}

std::vector<double>
dhasyKey(const GraphContext &ctx, const std::vector<double> &weights)
{
    const Superblock &sb = ctx.sb();
    bsAssert(weights.empty() ||
                 int(weights.size()) == sb.numBranches(),
             "per-branch weight vector size mismatch");

    int cp = ctx.criticalPath();
    std::vector<double> key(std::size_t(sb.numOps()), 0.0);
    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        OpId b = sb.branches()[std::size_t(bi)];
        double w = weights.empty() ? sb.exitProb(b)
                                   : weights[std::size_t(bi)];
        int anchor = ctx.earlyDC()[std::size_t(b)];
        const std::vector<int> &height = ctx.heightToBranch(bi);
        for (OpId v = 0; v <= b; ++v) {
            if (height[std::size_t(v)] < 0)
                continue;
            int lateDC = anchor - height[std::size_t(v)];
            key[std::size_t(v)] += w * double(cp + 1 - lateDC);
        }
    }
    return key;
}

std::vector<double>
normalizeKey(std::vector<double> key)
{
    double maxMag = 0.0;
    for (double k : key)
        maxMag = std::max(maxMag, std::fabs(k));
    if (maxMag > 0.0) {
        for (double &k : key)
            k /= maxMag;
    }
    return key;
}

std::vector<double>
combineKeys(const std::vector<double> &cp, double a,
            const std::vector<double> &sr, double b,
            const std::vector<double> &dhasy, double c)
{
    std::vector<double> out;
    combineKeysInto(out, cp, a, sr, b, dhasy, c);
    return out;
}

void
combineKeysInto(std::vector<double> &out, const std::vector<double> &cp,
                double a, const std::vector<double> &sr, double b,
                const std::vector<double> &dhasy, double c)
{
    bsAssert(cp.size() == sr.size() && sr.size() == dhasy.size(),
             "key size mismatch");
    out.resize(cp.size());
    // The kernel keeps the (a*cp + b*sr) + c*dh association and the
    // build forbids FP contraction, so scalar and vector tables
    // produce bitwise-identical blends.
    simdKernels().blendKeys(a, cp.data(), b, sr.data(), c,
                            dhasy.data(), out.data(), int(cp.size()));
}

} // namespace balance
