/**
 * @file
 * Exact branch-and-bound minimization of weighted completion time
 * for small superblocks. Not part of the paper's apparatus; it is
 * this repository's oracle: property tests verify that every lower
 * bound stays below the optimum and every heuristic stays above it.
 *
 * The search enumerates, cycle by cycle, the maximal resource-
 * feasible subsets of the ready set. Maximal subsets suffice: with
 * fully pipelined units, moving any operation into an idle earlier
 * slot never increases any branch's completion time, so some optimal
 * schedule is "active". Pruning uses a dependence sweep plus a
 * per-class slot-counting bound on each unscheduled branch.
 */

#ifndef BALANCE_SCHED_OPTIMAL_HH
#define BALANCE_SCHED_OPTIMAL_HH

#include "graph/analysis.hh"
#include "machine/machine_model.hh"
#include "sched/schedule.hh"

namespace balance
{

/** Search limits and seeding for optimalSchedule(). */
struct OptimalOptions
{
    /** Node budget; the search gives up (proven=false) beyond it. */
    long long maxNodes = 2000000;
    /**
     * Optional incumbent WCT to prune against (e.g. from a
     * heuristic); <= 0 means none.
     */
    double seedWct = 0.0;
};

/** Outcome of the exact search. */
struct OptimalResult
{
    Schedule schedule;       //!< best complete schedule found
    double wct = 0.0;        //!< its weighted completion time
    bool proven = false;     //!< true when the search ran to completion
    long long nodes = 0;     //!< search nodes expanded
};

/**
 * Exact WCT minimization over the same schedule space the list
 * schedulers explore: zero-latency edges (anti dependences) are
 * conservatively serialized to the next cycle, matching the forward
 * schedulers' treatment.
 */
OptimalResult optimalSchedule(const GraphContext &ctx,
                              const MachineModel &machine,
                              const OptimalOptions &opts = {});

} // namespace balance

#endif // BALANCE_SCHED_OPTIMAL_HH
