/**
 * @file
 * Static priority functions for the baseline superblock heuristics
 * (Section 2):
 *
 *  - Critical Path: dependence height below the operation;
 *  - Successive Retirement: program-order block tier, Critical Path
 *    within a tier;
 *  - DHASY (Dependence Height and Speculative Yield): critical paths
 *    to each successor branch weighted by exit probability,
 *    priority(v) = sum_b w_b * (CP + 1 - LateDC_b[v]).
 *
 * All keys are returned as plain vectors so they can be combined
 * (the Best scheduler's 121-point cross product) or fed straight to
 * listSchedule().
 */

#ifndef BALANCE_SCHED_PRIORITIES_HH
#define BALANCE_SCHED_PRIORITIES_HH

#include <vector>

#include "graph/analysis.hh"

namespace balance
{

/**
 * Critical Path key: the longest latency path from each operation to
 * any operation below it (its dependence height).
 */
std::vector<double> criticalPathKey(const GraphContext &ctx);

/**
 * Successive Retirement key: operations of earlier program blocks
 * strictly dominate later blocks; the Critical Path key breaks ties
 * within a block.
 */
std::vector<double> successiveRetirementKey(const GraphContext &ctx);

/**
 * DHASY key: priority(v) = sum over successor branches b of
 * exitProb(b) * (CP + 1 - LateDC_b[v]), with LateDC_b anchored at
 * EarlyDC[b].
 *
 * @param ctx Analysis context.
 * @param weights Optional per-branch weights overriding the exit
 *        probabilities (used for the no-profile experiment); empty
 *        means use the superblock's probabilities.
 */
std::vector<double> dhasyKey(const GraphContext &ctx,
                             const std::vector<double> &weights = {});

/**
 * Normalize a key to [0, 1] by dividing by its maximum magnitude
 * (all-zero keys stay zero). Used to mix heterogeneous keys.
 */
std::vector<double> normalizeKey(std::vector<double> key);

/**
 * Convex-ish combination a*cp + b*sr + c*dhasy of pre-normalized
 * keys; the Best scheduler sweeps (a, b, c) over a grid.
 */
std::vector<double> combineKeys(const std::vector<double> &cp, double a,
                                const std::vector<double> &sr, double b,
                                const std::vector<double> &dhasy,
                                double c);

/**
 * combineKeys() into a reused buffer (resized to fit). Every blend in
 * the library funnels through this one loop so the combo grid and the
 * standalone ComboScheduler produce bit-identical doubles.
 */
void combineKeysInto(std::vector<double> &out,
                     const std::vector<double> &cp, double a,
                     const std::vector<double> &sr, double b,
                     const std::vector<double> &dhasy, double c);

} // namespace balance

#endif // BALANCE_SCHED_PRIORITIES_HH
