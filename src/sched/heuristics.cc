#include "sched/heuristics.hh"

#include <algorithm>
#include <sstream>

#include "sched/priorities.hh"
#include "sched/sched_scratch.hh"
#include "support/diagnostics.hh"

namespace balance
{

std::vector<double>
steeringWeights(const Superblock &sb, const ScheduleRequest &req)
{
    if (!req.branchWeights.empty()) {
        bsAssert(int(req.branchWeights.size()) == sb.numBranches(),
                 "branch weight override size mismatch");
        return req.branchWeights;
    }
    std::vector<double> w;
    w.reserve(std::size_t(sb.numBranches()));
    for (OpId b : sb.branches())
        w.push_back(sb.exitProb(b));
    return w;
}

Schedule
CriticalPathScheduler::run(const GraphContext &ctx,
                           const MachineModel &machine,
                           const ScheduleRequest &req) const
{
    SchedScratch &scr =
        req.scratch ? *req.scratch : threadLocalSchedScratch();
    return listSchedule(ctx.sb(), machine, scr.cpKey(ctx), req.stats,
                        &scr);
}

Schedule
SuccessiveRetirementScheduler::run(const GraphContext &ctx,
                                   const MachineModel &machine,
                                   const ScheduleRequest &req) const
{
    SchedScratch &scr =
        req.scratch ? *req.scratch : threadLocalSchedScratch();
    return listSchedule(ctx.sb(), machine, scr.srKey(ctx), req.stats,
                        &scr);
}

Schedule
DhasyScheduler::run(const GraphContext &ctx, const MachineModel &machine,
                    const ScheduleRequest &req) const
{
    SchedScratch &scr =
        req.scratch ? *req.scratch : threadLocalSchedScratch();
    return listSchedule(ctx.sb(), machine,
                        scr.dhKey(ctx, steeringWeights(ctx.sb(), req)),
                        req.stats, &scr);
}

GStarScheduler::GStarScheduler(Secondary secondary)
    : secondary(secondary)
{
}

std::string
GStarScheduler::name() const
{
    return secondary == Secondary::CriticalPath ? "G*" : "G*(DHASY)";
}

Schedule
GStarScheduler::run(const GraphContext &ctx, const MachineModel &machine,
                    const ScheduleRequest &req) const
{
    const Superblock &sb = ctx.sb();
    SchedScratch &scr =
        req.scratch ? *req.scratch : threadLocalSchedScratch();
    std::vector<double> weights = steeringWeights(sb, req);
    const std::vector<double> &cpKey =
        secondary == Secondary::CriticalPath ? scr.cpKey(ctx)
                                             : scr.dhKey(ctx, weights);

    // Cumulative steering weight up to and including each branch.
    std::vector<double> cumulative(weights.size(), 0.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        cumulative[i] = acc;
    }

    DynBitset remaining(std::size_t(sb.numOps()));
    remaining.setAll();
    std::vector<char> branchDone(std::size_t(sb.numBranches()), 0);
    std::vector<double> tier(std::size_t(sb.numOps()), 0.0);
    double nextTier = double(sb.numBranches());

    for (int round = 0; round < sb.numBranches(); ++round) {
        int bestBi = -1;
        double bestRank = 0.0;
        for (int bi = 0; bi < sb.numBranches(); ++bi) {
            if (branchDone[std::size_t(bi)])
                continue;
            if (req.stats)
                ++req.stats->loopTrips;
            OpId b = sb.branches()[std::size_t(bi)];
            DynBitset subset = ctx.predSets().closure(b);
            subset &= remaining;
            std::vector<int> issue = listScheduleSubset(
                sb, machine, subset, cpKey, req.stats, &scr);
            double denom = std::max(cumulative[std::size_t(bi)], 1e-12);
            double rank =
                double(issue[std::size_t(b)] + sb.op(b).latency) / denom;
            if (bestBi < 0 || rank < bestRank) {
                bestBi = bi;
                bestRank = rank;
            }
        }
        bsAssert(bestBi >= 0, "no branch left to rank");

        // The critical branch's remaining closure retires next.
        OpId b = sb.branches()[std::size_t(bestBi)];
        DynBitset subset = ctx.predSets().closure(b);
        subset &= remaining;
        subset.forEach([&](std::size_t v) { tier[v] = nextTier; });
        nextTier -= 1.0;
        remaining.subtract(subset);
        branchDone[std::size_t(bestBi)] = 1;
    }

    // Tiers dominate; Critical Path breaks ties within a tier.
    double cpMax = *std::max_element(cpKey.begin(), cpKey.end());
    std::vector<double> priority(std::size_t(sb.numOps()));
    for (OpId v = 0; v < sb.numOps(); ++v) {
        priority[std::size_t(v)] =
            tier[std::size_t(v)] * (cpMax + 1.0) + cpKey[std::size_t(v)];
    }
    return listSchedule(sb, machine, priority, req.stats, &scr);
}

ComboScheduler::ComboScheduler(double a, double b, double c)
    : cpWeight(a), srWeight(b), dhasyWeight(c)
{
}

std::string
ComboScheduler::name() const
{
    std::ostringstream oss;
    oss << "Combo(" << cpWeight << "," << srWeight << "," << dhasyWeight
        << ")";
    return oss.str();
}

Schedule
ComboScheduler::run(const GraphContext &ctx, const MachineModel &machine,
                    const ScheduleRequest &req) const
{
    SchedScratch &scr =
        req.scratch ? *req.scratch : threadLocalSchedScratch();
    const std::vector<double> &cp = scr.cpKeyNormalized(ctx);
    const std::vector<double> &sr = scr.srKeyNormalized(ctx);
    const std::vector<double> &dh =
        scr.dhKeyNormalized(ctx, steeringWeights(ctx.sb(), req));
    combineKeysInto(scr.blendBuf, cp, cpWeight, sr, srWeight, dh,
                    dhasyWeight);
    return listSchedule(ctx.sb(), machine, scr.blendBuf, req.stats,
                        &scr);
}

} // namespace balance
