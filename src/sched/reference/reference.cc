#include "sched/reference/reference.hh"

#include <algorithm>
#include <cmath>

#include "machine/resource_state.hh"
#include "support/diagnostics.hh"

namespace balance
{

namespace sched_reference
{

namespace
{

/** The pre-overhaul greedy core, verbatim. */
template <typename Filter>
std::vector<int>
greedyCore(const Superblock &sb, const MachineModel &machine,
           const std::vector<double> &priority, Filter inSubset,
           SchedulerStats *stats)
{
    bsAssert(int(priority.size()) == sb.numOps(),
             "priority vector size mismatch");

    int v = sb.numOps();
    std::vector<int> issue(std::size_t(v), -1);
    std::vector<int> predsLeft(std::size_t(v), 0);
    std::vector<int> readyAt(std::size_t(v), 0);
    int total = 0;

    for (OpId id = 0; id < v; ++id) {
        if (!inSubset(id))
            continue;
        ++total;
        for (const Adjacent &e : sb.preds(id)) {
            if (inSubset(e.op))
                ++predsLeft[std::size_t(id)];
        }
    }

    // Ready list ordered by (priority desc, id asc); rebuilt lazily.
    std::vector<OpId> ready;
    for (OpId id = 0; id < v; ++id) {
        if (inSubset(id) && predsLeft[std::size_t(id)] == 0)
            ready.push_back(id);
    }
    auto higher = [&](OpId a, OpId b) {
        if (priority[std::size_t(a)] != priority[std::size_t(b)])
            return priority[std::size_t(a)] > priority[std::size_t(b)];
        return a < b;
    };

    ResourceState table(machine);
    int scheduled = 0;
    int cycle = 0;
    std::vector<OpId> pending; // dependence-complete, latency not met

    while (scheduled < total) {
        // Promote pending ops whose latency has elapsed.
        pending.erase(
            std::remove_if(pending.begin(), pending.end(),
                           [&](OpId id) {
                               if (readyAt[std::size_t(id)] <= cycle) {
                                   ready.push_back(id);
                                   return true;
                               }
                               return false;
                           }),
            pending.end());

        std::sort(ready.begin(), ready.end(), higher);
        if (stats) {
            ++stats->cycles;
            stats->readySum += (long long)(ready.size());
        }

        // One pass over the ready list: place what fits this cycle.
        std::vector<OpId> leftover;
        for (OpId id : ready) {
            if (stats)
                ++stats->loopTrips;
            if (table.hasSlot(cycle, sb.op(id).cls)) {
                table.reserve(cycle, sb.op(id).cls);
                issue[std::size_t(id)] = cycle;
                ++scheduled;
                if (stats)
                    ++stats->decisions;
                for (const Adjacent &e : sb.succs(id)) {
                    if (!inSubset(e.op))
                        continue;
                    readyAt[std::size_t(e.op)] =
                        std::max(readyAt[std::size_t(e.op)],
                                 cycle + e.latency);
                    if (--predsLeft[std::size_t(e.op)] == 0)
                        pending.push_back(e.op);
                }
            } else {
                leftover.push_back(id);
            }
        }
        ready = std::move(leftover);
        ++cycle;
    }
    return issue;
}

} // namespace

Schedule
listSchedule(const Superblock &sb, const MachineModel &machine,
             const std::vector<double> &priority, SchedulerStats *stats)
{
    std::vector<int> issue = greedyCore(
        sb, machine, priority, [](OpId) { return true; }, stats);
    Schedule out(sb.numOps());
    for (OpId id = 0; id < sb.numOps(); ++id)
        out.setIssue(id, issue[std::size_t(id)]);
    return out;
}

std::vector<int>
listScheduleSubset(const Superblock &sb, const MachineModel &machine,
                   const DynBitset &subset,
                   const std::vector<double> &priority,
                   SchedulerStats *stats)
{
    bsAssert(subset.size() == std::size_t(sb.numOps()),
             "subset universe mismatch");
    return greedyCore(
        sb, machine, priority,
        [&](OpId id) { return subset.test(std::size_t(id)); }, stats);
}

std::vector<double>
criticalPathKey(const GraphContext &ctx)
{
    const Superblock &sb = ctx.sb();
    std::vector<int> down(std::size_t(sb.numOps()), 0);
    for (OpId v = OpId(sb.numOps()) - 1; v >= 0; --v) {
        for (const Adjacent &e : sb.succs(v)) {
            down[std::size_t(v)] =
                std::max(down[std::size_t(v)],
                         down[std::size_t(e.op)] + e.latency);
        }
    }
    return {down.begin(), down.end()};
}

std::vector<double>
successiveRetirementKey(const GraphContext &ctx)
{
    const Superblock &sb = ctx.sb();
    std::vector<double> cp = sched_reference::criticalPathKey(ctx);
    double cpMax = *std::max_element(cp.begin(), cp.end());
    double tierStep = cpMax + 1.0;
    std::vector<double> key(std::size_t(sb.numOps()));
    for (OpId v = 0; v < sb.numOps(); ++v) {
        double tier = double(sb.numBlocks() - sb.op(v).block);
        key[std::size_t(v)] = tier * tierStep + cp[std::size_t(v)];
    }
    return key;
}

std::vector<double>
dhasyKey(const GraphContext &ctx, const std::vector<double> &weights)
{
    const Superblock &sb = ctx.sb();
    bsAssert(int(weights.size()) == sb.numBranches(),
             "per-branch weight vector size mismatch");

    int cp = ctx.criticalPath();
    std::vector<double> key(std::size_t(sb.numOps()), 0.0);
    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        OpId b = sb.branches()[std::size_t(bi)];
        double w = weights[std::size_t(bi)];
        int anchor = ctx.earlyDC()[std::size_t(b)];
        const std::vector<int> &height = ctx.heightToBranch(bi);
        for (OpId v = 0; v <= b; ++v) {
            if (height[std::size_t(v)] < 0)
                continue;
            int lateDC = anchor - height[std::size_t(v)];
            key[std::size_t(v)] += w * double(cp + 1 - lateDC);
        }
    }
    return key;
}

std::vector<double>
normalizeKey(std::vector<double> key)
{
    double maxMag = 0.0;
    for (double k : key)
        maxMag = std::max(maxMag, std::fabs(k));
    if (maxMag > 0.0) {
        for (double &k : key)
            k /= maxMag;
    }
    return key;
}

std::vector<double>
combineKeys(const std::vector<double> &cp, double a,
            const std::vector<double> &sr, double b,
            const std::vector<double> &dhasy, double c)
{
    bsAssert(cp.size() == sr.size() && sr.size() == dhasy.size(),
             "key size mismatch");
    std::vector<double> out(cp.size());
    for (std::size_t i = 0; i < cp.size(); ++i)
        out[i] = a * cp[i] + b * sr[i] + c * dhasy[i];
    return out;
}

Schedule
gstarSchedule(const GraphContext &ctx, const MachineModel &machine,
              const std::vector<double> &weights, SchedulerStats *stats)
{
    const Superblock &sb = ctx.sb();
    std::vector<double> cpKey = sched_reference::criticalPathKey(ctx);

    std::vector<double> cumulative(weights.size(), 0.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        cumulative[i] = acc;
    }

    DynBitset remaining(std::size_t(sb.numOps()));
    remaining.setAll();
    std::vector<char> branchDone(std::size_t(sb.numBranches()), 0);
    std::vector<double> tier(std::size_t(sb.numOps()), 0.0);
    double nextTier = double(sb.numBranches());

    for (int round = 0; round < sb.numBranches(); ++round) {
        int bestBi = -1;
        double bestRank = 0.0;
        for (int bi = 0; bi < sb.numBranches(); ++bi) {
            if (branchDone[std::size_t(bi)])
                continue;
            if (stats)
                ++stats->loopTrips;
            OpId b = sb.branches()[std::size_t(bi)];
            DynBitset subset = ctx.predSets().closure(b);
            subset &= remaining;
            std::vector<int> issue = sched_reference::listScheduleSubset(
                sb, machine, subset, cpKey, stats);
            double denom = std::max(cumulative[std::size_t(bi)], 1e-12);
            double rank =
                double(issue[std::size_t(b)] + sb.op(b).latency) / denom;
            if (bestBi < 0 || rank < bestRank) {
                bestBi = bi;
                bestRank = rank;
            }
        }
        bsAssert(bestBi >= 0, "no branch left to rank");

        OpId b = sb.branches()[std::size_t(bestBi)];
        DynBitset subset = ctx.predSets().closure(b);
        subset &= remaining;
        subset.forEach([&](std::size_t v) { tier[v] = nextTier; });
        nextTier -= 1.0;
        remaining.subtract(subset);
        branchDone[std::size_t(bestBi)] = 1;
    }

    double cpMax = *std::max_element(cpKey.begin(), cpKey.end());
    std::vector<double> priority(std::size_t(sb.numOps()));
    for (OpId v = 0; v < sb.numOps(); ++v) {
        priority[std::size_t(v)] =
            tier[std::size_t(v)] * (cpMax + 1.0) + cpKey[std::size_t(v)];
    }
    return sched_reference::listSchedule(sb, machine, priority, stats);
}

Schedule
bestSchedule(const GraphContext &ctx, const MachineModel &machine,
             const std::vector<double> &weights, SchedulerStats *stats)
{
    const Superblock &sb = ctx.sb();

    bool haveBest = false;
    Schedule best;
    double bestWct = 0.0;
    auto consider = [&](Schedule s) {
        double w = s.wct(sb);
        if (!haveBest || w < bestWct) {
            best = std::move(s);
            bestWct = w;
            haveBest = true;
        }
    };

    consider(sched_reference::listSchedule(
        sb, machine, sched_reference::successiveRetirementKey(ctx), stats));
    consider(sched_reference::listSchedule(sb, machine,
                                           sched_reference::criticalPathKey(ctx), stats));
    consider(gstarSchedule(ctx, machine, weights, stats));
    consider(sched_reference::listSchedule(sb, machine,
                                           sched_reference::dhasyKey(ctx, weights), stats));

    std::vector<double> cp = normalizeKey(sched_reference::criticalPathKey(ctx));
    std::vector<double> sr = normalizeKey(sched_reference::successiveRetirementKey(ctx));
    std::vector<double> dh = normalizeKey(sched_reference::dhasyKey(ctx, weights));
    for (int a = 0; a <= 10; ++a) {
        for (int b = 0; b <= 10; ++b) {
            double fa = double(a) / 10;
            double fb = double(b) / 10;
            double fc = std::max(0.0, 1.0 - fa - fb);
            consider(sched_reference::listSchedule(
                sb, machine, combineKeys(cp, fa, sr, fb, dh, fc), stats));
        }
    }
    return best;
}

} // namespace sched_reference

} // namespace balance
