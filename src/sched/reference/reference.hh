/**
 * @file
 * Retained naive implementations of the superblock schedulers exactly
 * as they were written before the allocation-free scheduler engine
 * landed: the cycle-driven greedy list scheduler (fresh vectors and a
 * full std::sort per cycle), the CP/SR/DHASY priority keys recomputed
 * from scratch on every call, G* with per-round subset scheduling,
 * and the Best envelope running all 121 combo-grid points with no
 * deduplication.
 *
 * The optimized engine in sched/list_scheduler, sched/priorities, and
 * sched/best_scheduler must stay *bitwise identical* to this code:
 * the golden-equivalence test (tests/sched/sched_engine_golden_test)
 * compares the two across a seeded workload population, and
 * bench/sched_perf.cc uses this path as the wall-clock baseline.
 * Keep this file dumb and frozen — performance work belongs in the
 * main path only.
 */

#ifndef BALANCE_SCHED_REFERENCE_REFERENCE_HH
#define BALANCE_SCHED_REFERENCE_REFERENCE_HH

#include <vector>

#include "graph/analysis.hh"
#include "machine/machine_model.hh"
#include "sched/list_scheduler.hh"
#include "sched/schedule.hh"
#include "support/bitset.hh"

namespace balance
{

namespace sched_reference
{

/** Naive greedy list scheduling (fresh vectors, sort per cycle). */
Schedule listSchedule(const Superblock &sb, const MachineModel &machine,
                      const std::vector<double> &priority,
                      SchedulerStats *stats = nullptr);

/** Naive subset variant; -1 outside the subset. */
std::vector<int> listScheduleSubset(const Superblock &sb,
                                    const MachineModel &machine,
                                    const DynBitset &subset,
                                    const std::vector<double> &priority,
                                    SchedulerStats *stats = nullptr);

/** Naive Critical Path key (recomputed from scratch). */
std::vector<double> criticalPathKey(const GraphContext &ctx);

/** Naive Successive Retirement key. */
std::vector<double> successiveRetirementKey(const GraphContext &ctx);

/** Naive DHASY key for explicit per-branch @p weights. */
std::vector<double> dhasyKey(const GraphContext &ctx,
                             const std::vector<double> &weights);

/** Naive key normalization (divide by max magnitude). */
std::vector<double> normalizeKey(std::vector<double> key);

/** Naive a*cp + b*sr + c*dhasy mix. */
std::vector<double> combineKeys(const std::vector<double> &cp, double a,
                                const std::vector<double> &sr, double b,
                                const std::vector<double> &dhasy,
                                double c);

/** Naive G* with Critical Path as the secondary heuristic. */
Schedule gstarSchedule(const GraphContext &ctx,
                       const MachineModel &machine,
                       const std::vector<double> &weights,
                       SchedulerStats *stats = nullptr);

/**
 * Naive Best envelope: the SR, CP, G*, DHASY primaries in that order
 * followed by the full 11x11 combo grid, keeping the first schedule
 * that attains the minimum weighted completion time (strict <, so
 * ties keep the earlier run). @p weights steer DHASY, G*, and the
 * grid; the envelope always selects by the true exit probabilities.
 */
Schedule bestSchedule(const GraphContext &ctx,
                      const MachineModel &machine,
                      const std::vector<double> &weights,
                      SchedulerStats *stats = nullptr);

} // namespace sched_reference

} // namespace balance

#endif // BALANCE_SCHED_REFERENCE_REFERENCE_HH
