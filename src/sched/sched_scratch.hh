/**
 * @file
 * Per-worker scratch state for the scheduler engine, the analog of
 * bounds/bound_scratch.hh for the list-scheduler side:
 *
 *  - a ScratchArena for the per-run working set of the greedy core
 *    (issue/preds/ready buffers, rank permutation, ready bitset),
 *    rewound in O(1) between runs;
 *  - cached CP/SR/DHASY priority tables, raw and normalized, computed
 *    once per (superblock, steering weights) and blended by the Best
 *    combo grid instead of being recomputed 121 times;
 *  - the combo-grid deduplication memory (rank permutations already
 *    scheduled, with their WCT and stats deltas);
 *  - engine telemetry (table cache hits/misses, grid runs scheduled
 *    and skipped).
 *
 * A scratch is NOT thread-safe; the eval driver owns one per
 * superblock evaluation (keeping folded telemetry thread-invariant),
 * the serial benches one per process. Every scheduler accepts an
 * optional scratch through ScheduleRequest and falls back to a
 * thread-local one, so results never depend on whether a scratch was
 * passed — pinned by tests/sched/sched_engine_golden_test.
 */

#ifndef BALANCE_SCHED_SCHED_SCRATCH_HH
#define BALANCE_SCHED_SCHED_SCRATCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/analysis.hh"
#include "sched/list_scheduler.hh"
#include "support/arena.hh"

namespace balance
{

/** Scheduler-engine telemetry, folded like BoundScratch stats. */
struct SchedEngineStats
{
    long long tableHits = 0;   //!< priority tables served from cache
    long long tableMisses = 0; //!< priority tables computed
    long long gridRuns = 0;    //!< combo-grid points scheduled
    long long gridSkipped = 0; //!< combo-grid points deduplicated
};

/**
 * Hook for higher layers (the Balance/Help engine in src/core) to
 * park reusable state in a SchedScratch without a sched -> core
 * dependency; they downcast their own derived type.
 */
struct SchedScratchExtension
{
    virtual ~SchedScratchExtension() = default;
};

/** Per-worker scheduler scratch (see file comment). */
class SchedScratch
{
  public:
    SchedScratch() = default;

    SchedScratch(const SchedScratch &) = delete;
    SchedScratch &operator=(const SchedScratch &) = delete;

    /** Raw Critical Path key for ctx's superblock (cached). */
    const std::vector<double> &cpKey(const GraphContext &ctx);

    /** Raw Successive Retirement key (cached). */
    const std::vector<double> &srKey(const GraphContext &ctx);

    /** Raw DHASY key for @p weights (cached per weight vector). */
    const std::vector<double> &dhKey(const GraphContext &ctx,
                                     const std::vector<double> &weights);

    /** Normalized variants of the three keys (cached alongside). */
    const std::vector<double> &cpKeyNormalized(const GraphContext &ctx);
    const std::vector<double> &srKeyNormalized(const GraphContext &ctx);
    const std::vector<double> &
    dhKeyNormalized(const GraphContext &ctx,
                    const std::vector<double> &weights);

    /** Arena backing the greedy core's per-run working set. */
    ScratchArena &runArena() { return arena; }

    /** @return the arena's high-water mark (telemetry). */
    std::size_t
    highWaterBytes() const
    {
        return arena.highWaterBytes();
    }

    SchedEngineStats stats;

    /**
     * Combo-grid dedup memory: one entry per unique rank permutation
     * scheduled so far in the current grid sweep. The schedule (and
     * the stats it accrues) depend on the priority vector only
     * through the rank permutation, so an equal permutation is
     * proof the run would be bit-for-bit identical.
     */
    struct GridMemory
    {
        std::vector<std::uint64_t> hashes;    //!< permutation hashes
        std::vector<std::vector<std::int32_t>> perms;
        std::vector<double> wcts;             //!< per unique run
        std::vector<SchedulerStats> deltas;   //!< stats per unique run

        void
        clear()
        {
            hashes.clear();
            perms.clear();
            wcts.clear();
            deltas.clear();
        }
    };

    GridMemory grid;

    /** Persistent buffers for the grid sweep (blend key, best issue). */
    std::vector<double> blendBuf;
    std::vector<int> bestIssueBuf;

    /** Opaque parking spot for the core engine's reusable state. */
    std::unique_ptr<SchedScratchExtension> coreExt;

  private:
    /** Rebind the cache to @p ctx when it changed (uid keyed). */
    void ensureSb(const GraphContext &ctx);

    /** Make sure the DHASY entry matches @p weights. */
    void ensureDh(const GraphContext &ctx,
                  const std::vector<double> &weights);

    ScratchArena arena;

    std::uint64_t cachedUid = 0; //!< 0 = nothing cached
    bool haveCpSr = false;
    bool haveCpNorm = false;
    bool haveSrNorm = false;
    bool haveDh = false;
    bool haveDhNorm = false;
    std::vector<double> cp, sr, dh;
    std::vector<double> cpNorm, srNorm, dhNorm;
    std::vector<double> dhWeights;
};

/**
 * The fallback scratch used whenever a caller passes none: one per
 * thread, reused across calls. Results never depend on which scratch
 * served a run.
 */
SchedScratch &threadLocalSchedScratch();

} // namespace balance

#endif // BALANCE_SCHED_SCHED_SCRATCH_HH
