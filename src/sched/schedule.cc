#include "sched/schedule.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "machine/resource_state.hh"
#include "support/diagnostics.hh"
#include "support/table.hh"

namespace balance
{

void
Schedule::setIssue(OpId op, int cycle)
{
    bsAssert(op >= 0 && op < numOps(), "unknown op ", op);
    bsAssert(cycle >= 0, "negative issue cycle ", cycle);
    bsAssert(issue[std::size_t(op)] < 0, "op ", op, " already scheduled");
    issue[std::size_t(op)] = cycle;
}

bool
Schedule::complete() const
{
    return std::all_of(issue.begin(), issue.end(),
                       [](int c) { return c >= 0; });
}

int
Schedule::makespan() const
{
    int maxCycle = -1;
    for (int c : issue)
        maxCycle = std::max(maxCycle, c);
    return maxCycle + 1;
}

double
Schedule::wct(const Superblock &sb) const
{
    double total = 0.0;
    for (OpId b : sb.branches()) {
        bsAssert(isScheduled(b), "branch ", b, " unscheduled in wct()");
        total += sb.exitProb(b) *
                 (issue[std::size_t(b)] + sb.op(b).latency);
    }
    return total;
}

void
Schedule::validate(const Superblock &sb, const MachineModel &machine) const
{
    bsAssert(numOps() == sb.numOps(), "schedule size mismatch");
    bsAssert(complete(), "incomplete schedule for '", sb.name(), "'");

    for (OpId v = 0; v < sb.numOps(); ++v) {
        for (const Adjacent &e : sb.succs(v)) {
            bsAssert(issueOf(e.op) >= issueOf(v) + e.latency,
                     "dependence violated: ", v, " -> ", e.op,
                     " latency ", e.latency, " but cycles ", issueOf(v),
                     " and ", issueOf(e.op));
        }
    }

    ResourceState table(machine);
    for (OpId v = 0; v < sb.numOps(); ++v) {
        bsAssert(table.hasSlot(issueOf(v), sb.op(v).cls),
                 "resource overflow in cycle ", issueOf(v), " for op ",
                 v, " (", opClassName(sb.op(v).cls), ")");
        table.reserve(issueOf(v), sb.op(v).cls);
    }
}

std::string
Schedule::render(const Superblock &sb, const MachineModel &machine) const
{
    std::map<int, std::vector<OpId>> byCycle;
    for (OpId v = 0; v < sb.numOps(); ++v)
        byCycle[issueOf(v)].push_back(v);

    std::ostringstream oss;
    oss << "schedule of '" << sb.name() << "' on " << machine.name()
        << " (wct " << fmtDouble(wct(sb), 3) << ", " << makespan()
        << " cycles)\n";
    for (auto &[cycle, opIds] : byCycle) {
        oss << "  cycle " << cycle << ":";
        for (OpId v : opIds) {
            const Operation &o = sb.op(v);
            oss << "  " << v << "(" << opClassName(o.cls);
            if (o.isBranch())
                oss << " p=" << fmtDouble(o.exitProb, 2);
            oss << ")";
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace balance
