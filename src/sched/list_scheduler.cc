#include "sched/list_scheduler.hh"

#include <algorithm>

#include "machine/resource_state.hh"
#include "support/diagnostics.hh"

namespace balance
{

namespace
{

/**
 * Shared greedy core. @p inSubset(v) filters the scheduled
 * population; dependences from filtered-out operations are ignored.
 */
template <typename Filter>
std::vector<int>
greedyCore(const Superblock &sb, const MachineModel &machine,
           const std::vector<double> &priority, Filter inSubset,
           SchedulerStats *stats)
{
    bsAssert(int(priority.size()) == sb.numOps(),
             "priority vector size mismatch");

    int v = sb.numOps();
    std::vector<int> issue(std::size_t(v), -1);
    std::vector<int> predsLeft(std::size_t(v), 0);
    std::vector<int> readyAt(std::size_t(v), 0);
    int total = 0;

    for (OpId id = 0; id < v; ++id) {
        if (!inSubset(id))
            continue;
        ++total;
        for (const Adjacent &e : sb.preds(id)) {
            if (inSubset(e.op))
                ++predsLeft[std::size_t(id)];
        }
    }

    // Ready list ordered by (priority desc, id asc); rebuilt lazily.
    std::vector<OpId> ready;
    for (OpId id = 0; id < v; ++id) {
        if (inSubset(id) && predsLeft[std::size_t(id)] == 0)
            ready.push_back(id);
    }
    auto higher = [&](OpId a, OpId b) {
        if (priority[std::size_t(a)] != priority[std::size_t(b)])
            return priority[std::size_t(a)] > priority[std::size_t(b)];
        return a < b;
    };

    ResourceState table(machine);
    int scheduled = 0;
    int cycle = 0;
    std::vector<OpId> pending; // dependence-complete, latency not met

    while (scheduled < total) {
        // Promote pending ops whose latency has elapsed.
        pending.erase(
            std::remove_if(pending.begin(), pending.end(),
                           [&](OpId id) {
                               if (readyAt[std::size_t(id)] <= cycle) {
                                   ready.push_back(id);
                                   return true;
                               }
                               return false;
                           }),
            pending.end());

        std::sort(ready.begin(), ready.end(), higher);
        if (stats) {
            ++stats->cycles;
            stats->readySum += (long long)(ready.size());
        }

        // One pass over the ready list: place what fits this cycle.
        std::vector<OpId> leftover;
        for (OpId id : ready) {
            if (stats)
                ++stats->loopTrips;
            if (table.hasSlot(cycle, sb.op(id).cls)) {
                table.reserve(cycle, sb.op(id).cls);
                issue[std::size_t(id)] = cycle;
                ++scheduled;
                if (stats)
                    ++stats->decisions;
                for (const Adjacent &e : sb.succs(id)) {
                    if (!inSubset(e.op))
                        continue;
                    readyAt[std::size_t(e.op)] =
                        std::max(readyAt[std::size_t(e.op)],
                                 cycle + e.latency);
                    if (--predsLeft[std::size_t(e.op)] == 0)
                        pending.push_back(e.op);
                }
            } else {
                leftover.push_back(id);
            }
        }
        ready = std::move(leftover);
        ++cycle;
    }
    return issue;
}

} // namespace

Schedule
listSchedule(const Superblock &sb, const MachineModel &machine,
             const std::vector<double> &priority, SchedulerStats *stats)
{
    std::vector<int> issue = greedyCore(
        sb, machine, priority, [](OpId) { return true; }, stats);
    Schedule out(sb.numOps());
    for (OpId id = 0; id < sb.numOps(); ++id)
        out.setIssue(id, issue[std::size_t(id)]);
    return out;
}

std::vector<int>
listScheduleSubset(const Superblock &sb, const MachineModel &machine,
                   const DynBitset &subset,
                   const std::vector<double> &priority,
                   SchedulerStats *stats)
{
    bsAssert(subset.size() == std::size_t(sb.numOps()),
             "subset universe mismatch");
    return greedyCore(
        sb, machine, priority,
        [&](OpId id) { return subset.test(std::size_t(id)); }, stats);
}

} // namespace balance
