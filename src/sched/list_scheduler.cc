#include "sched/list_scheduler.hh"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "sched/sched_scratch.hh"
#include "support/diagnostics.hh"
#include "support/perf_counters.hh"
#include "support/simd_kernels.hh"

namespace balance
{

namespace
{

/**
 * The allocation-free greedy core. Equivalent to the pre-overhaul
 * scheduler (frozen in sched/reference) but driven by the rank
 * permutation: the ready set is a bitset indexed by rank, so
 * iterating its set bits ascending *is* the per-cycle
 * (priority desc, id asc) order the old code re-sorted for, and the
 * whole working set comes from the scratch arena. Resources reduce
 * to per-pool free counters for the current cycle because forward
 * list scheduling never reserves in any other cycle.
 *
 * The pending set (dependence-complete, latency unmet) is
 * structure-of-arrays — rank and ready-at cycle in separate spans —
 * so each cycle's promotion check is one vectorized compare
 * producing a promotion bitmask. The ready-at value is final when an
 * operation is pushed (its last predecessor just issued), so the
 * compare sees exactly what the old per-entry walk saw, and bits are
 * ORed into the ready set in a different order only — set-bit order
 * is invisible.
 *
 * Stats accounting is kept cycle-for-cycle identical: ++cycles and
 * readySum per while-iteration, ++loopTrips per ready operation
 * examined, ++decisions per placement. Promotion never ticked and
 * still doesn't.
 *
 * @p opOfRank holds exactly the scheduled population, sorted;
 * @p inSubset filters dependence edges, as before.
 */
template <typename Filter>
std::span<int>
rankedCore(const Superblock &sb, const MachineModel &machine,
           std::span<const std::int32_t> opOfRank, Filter inSubset,
           SchedulerStats *stats, SchedScratch &scratch)
{
    PerfRegion perf(PerfPhase::ListSched);
    const int v = sb.numOps();
    const int total = int(opOfRank.size());
    const int numPools = machine.numResources();
    ScratchArena &arena = scratch.runArena();
    const SimdKernels &kern = simdKernels();

    std::span<int> issue = arena.alloc<int>(std::size_t(v));
    std::span<int> predsLeft = arena.alloc<int>(std::size_t(v));
    std::span<int> readyAt = arena.alloc<int>(std::size_t(v));
    std::span<std::int32_t> rankOf =
        arena.alloc<std::int32_t>(std::size_t(v));
    const std::size_t words = (std::size_t(total) + 63) / 64;
    std::span<std::uint64_t> ready = arena.alloc<std::uint64_t>(words);
    std::span<std::int32_t> pendingRank =
        arena.alloc<std::int32_t>(std::size_t(total));
    std::span<int> pendingReadyAt =
        arena.alloc<int>(std::size_t(total));
    std::span<std::uint64_t> promoted =
        arena.alloc<std::uint64_t>(words + 1);
    std::span<int> freeNow = arena.alloc<int>(std::size_t(numPools));

    std::fill(issue.begin(), issue.end(), -1);
    std::fill(ready.begin(), ready.end(), 0);
    for (int r = 0; r < total; ++r) {
        OpId id = opOfRank[std::size_t(r)];
        rankOf[std::size_t(id)] = std::int32_t(r);
        readyAt[std::size_t(id)] = 0;
        int preds = 0;
        for (const Adjacent &e : sb.preds(id)) {
            if (inSubset(e.op))
                ++preds;
        }
        predsLeft[std::size_t(id)] = preds;
        if (preds == 0)
            ready[std::size_t(r) >> 6] |= std::uint64_t(1) << (r & 63);
    }

    int scheduled = 0;
    int cycle = 0;
    std::size_t pendingCount = 0; // dependence-complete, latency unmet

    while (scheduled < total) {
        // Promote pending ops whose latency has elapsed. The SoA
        // ready-at lane scans sequentially — no gather through op
        // ids — and pending sets on paper-sized blocks are a handful
        // of entries, so the direct scan-and-compact wins there. The
        // vectorized compare kernel takes over past one mask word,
        // where its 8-wide compares amortize the indirect call.
        if (pendingCount > 64) {
            kern.maskLE(pendingReadyAt.data(), cycle, promoted.data(),
                        int(pendingCount));
            std::size_t keep = 0;
            const std::size_t mWords = (pendingCount + 63) / 64;
            for (std::size_t w = 0; w < mWords; ++w) {
                std::uint64_t hit = promoted[w];
                std::uint64_t bits = hit;
                while (bits) {
                    int b = std::countr_zero(bits);
                    bits &= bits - 1;
                    std::int32_t r = pendingRank[w * 64 +
                                                 std::size_t(b)];
                    ready[std::size_t(r) >> 6] |= std::uint64_t(1)
                                                  << (r & 63);
                }
                std::uint64_t kept = ~hit;
                if (w == mWords - 1 && (pendingCount & 63))
                    kept &= (std::uint64_t(1) << (pendingCount & 63)) -
                            1;
                while (kept) {
                    int b = std::countr_zero(kept);
                    kept &= kept - 1;
                    std::size_t from = w * 64 + std::size_t(b);
                    pendingRank[keep] = pendingRank[from];
                    pendingReadyAt[keep] = pendingReadyAt[from];
                    ++keep;
                }
            }
            pendingCount = keep;
        } else if (pendingCount > 0) {
            std::size_t keep = 0;
            for (std::size_t i = 0; i < pendingCount; ++i) {
                if (pendingReadyAt[i] <= cycle) {
                    std::int32_t r = pendingRank[i];
                    ready[std::size_t(r) >> 6] |= std::uint64_t(1)
                                                  << (r & 63);
                } else {
                    pendingRank[keep] = pendingRank[i];
                    pendingReadyAt[keep] = pendingReadyAt[i];
                    ++keep;
                }
            }
            pendingCount = keep;
        }

        if (stats) {
            ++stats->cycles;
            long long count = 0;
            for (std::size_t w = 0; w < words; ++w)
                count += std::popcount(ready[w]);
            stats->readySum += count;
        }

        for (int r = 0; r < numPools; ++r)
            freeNow[std::size_t(r)] = machine.width(r);

        // One pass over the ready set in rank (= priority) order:
        // place what fits this cycle, leave the rest set.
        for (std::size_t w = 0; w < words; ++w) {
            std::uint64_t bits = ready[w];
            while (bits) {
                int bit = std::countr_zero(bits);
                bits &= bits - 1;
                std::int32_t r = std::int32_t(w * 64) + bit;
                OpId id = opOfRank[std::size_t(r)];
                if (stats)
                    ++stats->loopTrips;
                ResourceId pool = machine.poolOf(sb.op(id).cls);
                if (freeNow[std::size_t(pool)] <= 0)
                    continue;
                --freeNow[std::size_t(pool)];
                ready[w] &= ~(std::uint64_t(1) << bit);
                issue[std::size_t(id)] = cycle;
                ++scheduled;
                if (stats)
                    ++stats->decisions;
                for (const Adjacent &e : sb.succs(id)) {
                    if (!inSubset(e.op))
                        continue;
                    readyAt[std::size_t(e.op)] =
                        std::max(readyAt[std::size_t(e.op)],
                                 cycle + e.latency);
                    if (--predsLeft[std::size_t(e.op)] == 0) {
                        // Last predecessor placed: the ready-at value
                        // is final, snapshot it into the SoA lanes.
                        pendingRank[pendingCount] =
                            rankOf[std::size_t(e.op)];
                        pendingReadyAt[pendingCount] =
                            readyAt[std::size_t(e.op)];
                        ++pendingCount;
                    }
                }
            }
        }
        ++cycle;
    }
    return issue;
}

/** One rank with its sort key; moved whole so the sort never gathers. */
struct PackedRank
{
    std::uint64_t key; //!< descending-order priority key
    std::int32_t id;   //!< operation id
};

/** Below this size a comparison sort beats the radix passes. */
constexpr std::size_t radixMinSize = 128;

/**
 * Sort @p ranks by (keyOf[id] asc, id asc) == (priority desc, id
 * asc). Below radixMinSize the ids are sorted in place with a
 * key-gather comparator — the keys fit one or two cache lines, so
 * packing them next to the ids would cost more in setup than the
 * gathers do. At radixMinSize and above, keys are packed next to
 * their ids once and a stable LSD radix takes over (8-bit digits,
 * one histogram pass for all eight, uniform digits skipped); ties
 * preserve the input order, which both callers provide id-ascending,
 * so both paths produce the same unique total order the old gather
 * comparator produced — bit for bit.
 */
void
sortRanks(std::span<std::int32_t> ranks, const std::uint64_t *keyOf,
          ScratchArena &arena)
{
    const std::size_t n = ranks.size();
    if (n < radixMinSize) {
        std::sort(ranks.begin(), ranks.end(),
                  [keyOf](std::int32_t a, std::int32_t b) {
                      if (keyOf[a] != keyOf[b])
                          return keyOf[a] < keyOf[b];
                      return a < b;
                  });
        return;
    }

    std::span<PackedRank> packed = arena.alloc<PackedRank>(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::int32_t id = ranks[i];
        packed[i] = {keyOf[id], id};
    }

    const PackedRank *sorted = packed.data();
    {
        std::span<PackedRank> tmp = arena.alloc<PackedRank>(n);
        std::uint32_t hist[8][256] = {};
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t k = packed[i].key;
            for (int d = 0; d < 8; ++d)
                ++hist[d][(k >> (8 * d)) & 0xff];
        }
        PackedRank *src = packed.data();
        PackedRank *dst = tmp.data();
        for (int d = 0; d < 8; ++d) {
            const std::uint32_t *h = hist[d];
            // A digit every key shares permutes nothing: skip it.
            if (h[(src[0].key >> (8 * d)) & 0xff] == n)
                continue;
            std::uint32_t offs[256];
            std::uint32_t run = 0;
            for (int b = 0; b < 256; ++b) {
                offs[b] = run;
                run += h[b];
            }
            for (std::size_t i = 0; i < n; ++i)
                dst[offs[(src[i].key >> (8 * d)) & 0xff]++] = src[i];
            std::swap(src, dst);
        }
        sorted = src;
    }

    for (std::size_t i = 0; i < n; ++i)
        ranks[i] = sorted[i].id;
}

/**
 * Sort @p ids by (pri[id] desc, id asc) with a direct gather
 * comparator — the small-block path, where even one key-mapping
 * pass over the priority table costs more than the whole sort.
 * The u64 key order the mapped paths sort by is the same total
 * order: orderKeyDesc is a strictly decreasing monotone map of the
 * double, and the zeros it canonicalizes already compare equal
 * here. Which path runs is therefore invisible in the result.
 */
void
sortIdsByPriorityDesc(std::span<std::int32_t> ids, const double *pri)
{
    std::sort(ids.begin(), ids.end(),
              [pri](std::int32_t a, std::int32_t b) {
                  if (pri[a] != pri[b])
                      return pri[a] > pri[b];
                  return a < b;
              });
}

} // namespace

std::span<const std::int32_t>
priorityRankOrder(const Superblock &sb,
                  const std::vector<double> &priority,
                  SchedScratch &scratch)
{
    bsAssert(int(priority.size()) == sb.numOps(),
             "priority vector size mismatch");
    ScratchArena &arena = scratch.runArena();
    arena.reset();
    const std::size_t n = std::size_t(sb.numOps());
    std::span<std::int32_t> ranks = arena.alloc<std::int32_t>(n);
    for (OpId id = 0; id < sb.numOps(); ++id)
        ranks[std::size_t(id)] = id;
    if (n < radixMinSize) {
        sortIdsByPriorityDesc(ranks, priority.data());
        return ranks;
    }
    std::span<std::uint64_t> keys = arena.alloc<std::uint64_t>(n);
    simdKernels().mapKeysDesc(priority.data(), keys.data(), int(n));
    sortRanks(ranks, keys.data(), arena);
    return ranks;
}

std::span<const std::int32_t>
priorityRankOrderBlended(const Superblock &sb, double a,
                         const std::vector<double> &cp, double b,
                         const std::vector<double> &sr, double c,
                         const std::vector<double> &dh,
                         SchedScratch &scratch)
{
    bsAssert(int(cp.size()) == sb.numOps() && cp.size() == sr.size() &&
                 sr.size() == dh.size(),
             "priority table size mismatch");
    ScratchArena &arena = scratch.runArena();
    arena.reset();
    const std::size_t n = std::size_t(sb.numOps());
    std::span<std::int32_t> ranks = arena.alloc<std::int32_t>(n);
    for (OpId id = 0; id < sb.numOps(); ++id)
        ranks[std::size_t(id)] = id;
    if (n < radixMinSize) {
        // Same association as the blend kernels, same contraction
        // rules (the build forbids FP contraction globally), so the
        // blends — and the resulting order — match the fused path.
        std::span<double> blend = arena.alloc<double>(n);
        for (std::size_t i = 0; i < n; ++i)
            blend[i] = a * cp[i] + b * sr[i] + c * dh[i];
        sortIdsByPriorityDesc(ranks, blend.data());
        return ranks;
    }
    std::span<std::uint64_t> keys = arena.alloc<std::uint64_t>(n);
    simdKernels().blendMapKeysDesc(a, cp.data(), b, sr.data(), c,
                                   dh.data(), keys.data(), int(n));
    sortRanks(ranks, keys.data(), arena);
    return ranks;
}

std::span<const int>
listScheduleRanked(const Superblock &sb, const MachineModel &machine,
                   std::span<const std::int32_t> opOfRank,
                   SchedulerStats *stats, SchedScratch &scratch)
{
    return rankedCore(
        sb, machine, opOfRank, [](OpId) { return true; }, stats,
        scratch);
}

Schedule
listSchedule(const Superblock &sb, const MachineModel &machine,
             const std::vector<double> &priority, SchedulerStats *stats,
             SchedScratch *scratch)
{
    SchedScratch &scr = scratch ? *scratch : threadLocalSchedScratch();
    std::span<const std::int32_t> ranks =
        priorityRankOrder(sb, priority, scr);
    std::span<const int> issue =
        listScheduleRanked(sb, machine, ranks, stats, scr);
    Schedule out(sb.numOps());
    for (OpId id = 0; id < sb.numOps(); ++id)
        out.setIssue(id, issue[std::size_t(id)]);
    return out;
}

std::vector<int>
listScheduleSubset(const Superblock &sb, const MachineModel &machine,
                   const DynBitset &subset,
                   const std::vector<double> &priority,
                   SchedulerStats *stats, SchedScratch *scratch)
{
    bsAssert(subset.size() == std::size_t(sb.numOps()),
             "subset universe mismatch");
    bsAssert(int(priority.size()) == sb.numOps(),
             "priority vector size mismatch");

    SchedScratch &scr = scratch ? *scratch : threadLocalSchedScratch();
    ScratchArena &arena = scr.runArena();
    arena.reset();
    std::span<std::int32_t> members =
        arena.alloc<std::int32_t>(subset.count());
    std::size_t n = 0;
    subset.forEach(
        [&](std::size_t id) { members[n++] = std::int32_t(id); });
    if (n < radixMinSize) {
        sortIdsByPriorityDesc(members, priority.data());
    } else {
        std::span<std::uint64_t> keys =
            arena.alloc<std::uint64_t>(std::size_t(sb.numOps()));
        simdKernels().mapKeysDesc(priority.data(), keys.data(),
                                  sb.numOps());
        sortRanks(members, keys.data(), arena);
    }

    std::span<const int> issue = rankedCore(
        sb, machine, members,
        [&](OpId id) { return subset.test(std::size_t(id)); }, stats,
        scr);
    return {issue.begin(), issue.end()};
}

} // namespace balance
