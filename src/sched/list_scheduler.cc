#include "sched/list_scheduler.hh"

#include <algorithm>
#include <bit>

#include "sched/sched_scratch.hh"
#include "support/diagnostics.hh"

namespace balance
{

namespace
{

/**
 * The allocation-free greedy core. Equivalent to the pre-overhaul
 * scheduler (frozen in sched/reference) but driven by the rank
 * permutation: the ready set is a bitset indexed by rank, so
 * iterating its set bits ascending *is* the per-cycle
 * (priority desc, id asc) order the old code re-sorted for, and the
 * whole working set comes from the scratch arena. Resources reduce
 * to per-pool free counters for the current cycle because forward
 * list scheduling never reserves in any other cycle.
 *
 * Stats accounting is kept cycle-for-cycle identical: ++cycles and
 * readySum per while-iteration, ++loopTrips per ready operation
 * examined, ++decisions per placement.
 *
 * @p opOfRank holds exactly the scheduled population, sorted;
 * @p inSubset filters dependence edges, as before.
 */
template <typename Filter>
std::span<int>
rankedCore(const Superblock &sb, const MachineModel &machine,
           std::span<const std::int32_t> opOfRank, Filter inSubset,
           SchedulerStats *stats, SchedScratch &scratch)
{
    const int v = sb.numOps();
    const int total = int(opOfRank.size());
    const int numPools = machine.numResources();
    ScratchArena &arena = scratch.runArena();

    std::span<int> issue = arena.alloc<int>(std::size_t(v));
    std::span<int> predsLeft = arena.alloc<int>(std::size_t(v));
    std::span<int> readyAt = arena.alloc<int>(std::size_t(v));
    std::span<std::int32_t> rankOf =
        arena.alloc<std::int32_t>(std::size_t(v));
    const std::size_t words = (std::size_t(total) + 63) / 64;
    std::span<std::uint64_t> ready = arena.alloc<std::uint64_t>(words);
    std::span<std::int32_t> pending =
        arena.alloc<std::int32_t>(std::size_t(total));
    std::span<int> freeNow = arena.alloc<int>(std::size_t(numPools));

    std::fill(issue.begin(), issue.end(), -1);
    std::fill(ready.begin(), ready.end(), 0);
    for (int r = 0; r < total; ++r) {
        OpId id = opOfRank[std::size_t(r)];
        rankOf[std::size_t(id)] = std::int32_t(r);
        readyAt[std::size_t(id)] = 0;
        int preds = 0;
        for (const Adjacent &e : sb.preds(id)) {
            if (inSubset(e.op))
                ++preds;
        }
        predsLeft[std::size_t(id)] = preds;
        if (preds == 0)
            ready[std::size_t(r) >> 6] |= std::uint64_t(1) << (r & 63);
    }

    int scheduled = 0;
    int cycle = 0;
    std::size_t pendingCount = 0; // dependence-complete, latency unmet

    while (scheduled < total) {
        // Promote pending ops whose latency has elapsed.
        std::size_t keep = 0;
        for (std::size_t i = 0; i < pendingCount; ++i) {
            std::int32_t id = pending[i];
            if (readyAt[std::size_t(id)] <= cycle) {
                std::int32_t r = rankOf[std::size_t(id)];
                ready[std::size_t(r) >> 6] |= std::uint64_t(1)
                                              << (r & 63);
            } else {
                pending[keep++] = id;
            }
        }
        pendingCount = keep;

        if (stats) {
            ++stats->cycles;
            long long count = 0;
            for (std::size_t w = 0; w < words; ++w)
                count += std::popcount(ready[w]);
            stats->readySum += count;
        }

        for (int r = 0; r < numPools; ++r)
            freeNow[std::size_t(r)] = machine.width(r);

        // One pass over the ready set in rank (= priority) order:
        // place what fits this cycle, leave the rest set.
        for (std::size_t w = 0; w < words; ++w) {
            std::uint64_t bits = ready[w];
            while (bits) {
                int bit = std::countr_zero(bits);
                bits &= bits - 1;
                std::int32_t r = std::int32_t(w * 64) + bit;
                OpId id = opOfRank[std::size_t(r)];
                if (stats)
                    ++stats->loopTrips;
                ResourceId pool = machine.poolOf(sb.op(id).cls);
                if (freeNow[std::size_t(pool)] <= 0)
                    continue;
                --freeNow[std::size_t(pool)];
                ready[w] &= ~(std::uint64_t(1) << bit);
                issue[std::size_t(id)] = cycle;
                ++scheduled;
                if (stats)
                    ++stats->decisions;
                for (const Adjacent &e : sb.succs(id)) {
                    if (!inSubset(e.op))
                        continue;
                    readyAt[std::size_t(e.op)] =
                        std::max(readyAt[std::size_t(e.op)],
                                 cycle + e.latency);
                    if (--predsLeft[std::size_t(e.op)] == 0)
                        pending[pendingCount++] = e.op;
                }
            }
        }
        ++cycle;
    }
    return issue;
}

/** Sort @p ranks by (priority desc, id asc). */
void
sortRanks(std::span<std::int32_t> ranks,
          const std::vector<double> &priority)
{
    std::sort(ranks.begin(), ranks.end(),
              [&](std::int32_t a, std::int32_t b) {
                  if (priority[std::size_t(a)] !=
                      priority[std::size_t(b)])
                      return priority[std::size_t(a)] >
                             priority[std::size_t(b)];
                  return a < b;
              });
}

} // namespace

std::span<const std::int32_t>
priorityRankOrder(const Superblock &sb,
                  const std::vector<double> &priority,
                  SchedScratch &scratch)
{
    bsAssert(int(priority.size()) == sb.numOps(),
             "priority vector size mismatch");
    ScratchArena &arena = scratch.runArena();
    arena.reset();
    std::span<std::int32_t> ranks =
        arena.alloc<std::int32_t>(std::size_t(sb.numOps()));
    for (OpId id = 0; id < sb.numOps(); ++id)
        ranks[std::size_t(id)] = id;
    sortRanks(ranks, priority);
    return ranks;
}

std::span<const int>
listScheduleRanked(const Superblock &sb, const MachineModel &machine,
                   std::span<const std::int32_t> opOfRank,
                   SchedulerStats *stats, SchedScratch &scratch)
{
    return rankedCore(
        sb, machine, opOfRank, [](OpId) { return true; }, stats,
        scratch);
}

Schedule
listSchedule(const Superblock &sb, const MachineModel &machine,
             const std::vector<double> &priority, SchedulerStats *stats,
             SchedScratch *scratch)
{
    SchedScratch &scr = scratch ? *scratch : threadLocalSchedScratch();
    std::span<const std::int32_t> ranks =
        priorityRankOrder(sb, priority, scr);
    std::span<const int> issue =
        listScheduleRanked(sb, machine, ranks, stats, scr);
    Schedule out(sb.numOps());
    for (OpId id = 0; id < sb.numOps(); ++id)
        out.setIssue(id, issue[std::size_t(id)]);
    return out;
}

std::vector<int>
listScheduleSubset(const Superblock &sb, const MachineModel &machine,
                   const DynBitset &subset,
                   const std::vector<double> &priority,
                   SchedulerStats *stats, SchedScratch *scratch)
{
    bsAssert(subset.size() == std::size_t(sb.numOps()),
             "subset universe mismatch");
    bsAssert(int(priority.size()) == sb.numOps(),
             "priority vector size mismatch");

    SchedScratch &scr = scratch ? *scratch : threadLocalSchedScratch();
    ScratchArena &arena = scr.runArena();
    arena.reset();
    std::span<std::int32_t> members =
        arena.alloc<std::int32_t>(subset.count());
    std::size_t n = 0;
    subset.forEach(
        [&](std::size_t id) { members[n++] = std::int32_t(id); });
    sortRanks(members, priority);

    std::span<const int> issue = rankedCore(
        sb, machine, members,
        [&](OpId id) { return subset.test(std::size_t(id)); }, stats,
        scr);
    return {issue.begin(), issue.end()};
}

} // namespace balance
