/**
 * @file
 * The Balance decision log: a per-superblock record of every
 * scheduling step the Balance engine takes — the candidate set, each
 * unretired branch's needs and selection outcome, the pairwise
 * tradeoff revisions that granted delayedOK, reorder attempts, and
 * the Speculative-Hedge pick.
 *
 * The log is observational only and off by default: the engine fills
 * it exactly when ScheduleRequest::decisionLog is non-null, and
 * nothing ever reads it back into a scheduling decision, so enabling
 * it cannot perturb schedules or bounds. It lives in sched (not core)
 * so ScheduleRequest can carry a pointer without core types leaking
 * down; the engine maps its own outcome enum onto DecisionOutcome.
 *
 * Rendering: toText() for eyeballing, toJsonLines() for tooling (one
 * self-contained JSON object per step, each line individually
 * parseable). Both are deterministic functions of the recorded
 * steps, so dumps are bitwise thread-invariant when the caller
 * serializes superblocks in suite order.
 */

#ifndef BALANCE_SCHED_DECISION_LOG_HH
#define BALANCE_SCHED_DECISION_LOG_HH

#include <string>
#include <vector>

#include "graph/dag.hh"

namespace balance
{

/** Selection outcome of one branch in one step (Section 5.4). */
enum class DecisionOutcome
{
    Selected,  //!< needs jointly satisfied
    Delayed,   //!< needs not satisfied by the winning selection
    DelayedOk, //!< delayed, but the pairwise tradeoff favors it
    Ignored,   //!< no needs this decision
};

/** @return the lowercase wire name of @p o ("selected", ...). */
const char *decisionOutcomeName(DecisionOutcome o);

/** One branch's view of one scheduling step. */
struct DecisionBranch
{
    int branchIdx = -1;   //!< position in sb().branches()
    double weight = 0.0;  //!< steering weight
    int dynEarly = 0;     //!< dynamic lower bound on the branch
    int needEach = 0;     //!< NeedEach set size
    int needOne = 0;      //!< NeedOne members summed over pools
    DecisionOutcome outcome = DecisionOutcome::Ignored;
};

/** One delayedOK grant from the pairwise tradeoff pass. */
struct TradeoffNote
{
    int delayedBranch = -1; //!< branch revised to delayedOK
    int againstBranch = -1; //!< selected branch justifying the delay
    int pairBound = 0;      //!< pairwise-optimal issue of the delayed
    int staticEarly = 0;    //!< its static EarlyRC
    int dynEarly = 0;       //!< its dynamic bound at this step
};

/** One scheduling step (one operation placed). */
struct DecisionStep
{
    int cycle = 0;               //!< machine cycle of the decision
    OpId pick = invalidOp;       //!< Speculative-Hedge final pick
    std::vector<OpId> candidates; //!< ops the pick chose among
    std::vector<DecisionBranch> branches; //!< unretired branches
    std::vector<TradeoffNote> tradeoffs;  //!< delayedOK grants
    int reorders = 0;    //!< tradeoff reorder swaps performed
    double rank = 0.0;   //!< winning selection's weighted rank
    long long fullUpdates = 0;  //!< ERC full recomputations this step
    long long lightUpdates = 0; //!< incremental updates this step
};

/** Per-superblock decision recorder (see file comment). */
class DecisionLog
{
  public:
    /**
     * @param label The superblock's unique display name. Suite
     *        superblocks are named "<program>.sb<i>"; the program
     *        identity defaults to the prefix before the first '.'
     *        (the whole label when there is none) and can be
     *        overridden with setIdentity().
     */
    explicit DecisionLog(std::string label = {})
        : name(std::move(label))
    {
        std::size_t dot = name.find('.');
        prog = dot == std::string::npos ? name : name.substr(0, dot);
    }

    /** Superblock label used in rendered output. */
    const std::string &label() const { return name; }

    /**
     * Override the join identity carried by every JSON-lines record:
     * @p program the owning benchmark program, @p superblock the
     * unique superblock name (also becomes the label). Attribution
     * tooling joins records to per-superblock rows on these fields,
     * never positionally (docs/REPORTING.md).
     */
    void
    setIdentity(std::string program, std::string superblock)
    {
        prog = std::move(program);
        name = std::move(superblock);
    }

    /** @return the owning program's name. */
    const std::string &program() const { return prog; }

    /** @return the unique superblock name (same as label()). */
    const std::string &superblock() const { return name; }

    /** Append a step at @p cycle; the reference stays valid until
     *  the next beginStep (vector growth may move earlier steps). */
    DecisionStep &
    beginStep(int cycle)
    {
        rec.emplace_back();
        rec.back().cycle = cycle;
        return rec.back();
    }

    /** All recorded steps, in decision order. */
    const std::vector<DecisionStep> &steps() const { return rec; }

    /** Human-readable dump, one indented block per step. */
    std::string toText() const;

    /**
     * One JSON object per step, newline-terminated; every line is a
     * complete, valid JSON document (jsonLooksValid holds per line).
     */
    std::string toJsonLines() const;

  private:
    std::string name;
    std::string prog;
    std::vector<DecisionStep> rec;
};

} // namespace balance

#endif // BALANCE_SCHED_DECISION_LOG_HH
