#include "sched/decision_log.hh"

#include <sstream>

#include "support/json.hh"

namespace balance
{

const char *
decisionOutcomeName(DecisionOutcome o)
{
    switch (o) {
      case DecisionOutcome::Selected:
        return "selected";
      case DecisionOutcome::Delayed:
        return "delayed";
      case DecisionOutcome::DelayedOk:
        return "delayedOK";
      case DecisionOutcome::Ignored:
        return "ignored";
    }
    return "?";
}

std::string
DecisionLog::toText() const
{
    std::ostringstream out;
    out << "superblock " << (name.empty() ? "?" : name) << ": "
        << rec.size() << " steps\n";
    for (const DecisionStep &s : rec) {
        out << "  cycle " << s.cycle << ": pick " << s.pick << " of "
            << s.candidates.size() << " candidates [";
        for (std::size_t i = 0; i < s.candidates.size(); ++i)
            out << (i ? " " : "") << s.candidates[i];
        out << "]";
        if (!s.branches.empty())
            out << "; rank " << s.rank << "; reorders " << s.reorders;
        out << "\n";
        for (const DecisionBranch &b : s.branches) {
            out << "    branch " << b.branchIdx << " w=" << b.weight
                << " dynEarly=" << b.dynEarly << " needEach="
                << b.needEach << " needOne=" << b.needOne << " -> "
                << decisionOutcomeName(b.outcome);
            for (const TradeoffNote &t : s.tradeoffs) {
                if (t.delayedBranch == b.branchIdx) {
                    out << " (vs branch " << t.againstBranch
                        << ": pair=" << t.pairBound
                        << " static=" << t.staticEarly
                        << " dyn=" << t.dynEarly << ")";
                }
            }
            out << "\n";
        }
        if (s.fullUpdates || s.lightUpdates) {
            out << "    updates: full=" << s.fullUpdates
                << " light=" << s.lightUpdates << "\n";
        }
    }
    return out.str();
}

std::string
DecisionLog::toJsonLines() const
{
    std::string out;
    for (const DecisionStep &s : rec) {
        JsonWriter w;
        w.beginObject();
        // Explicit join identity (program, superblock): attribution
        // tooling matches records to BENCH / metrics rows on these,
        // never by file position.
        w.key("program").value(prog);
        w.key("superblock").value(name);
        w.key("cycle").value(s.cycle);
        w.key("pick").value((long long)(s.pick));
        w.key("candidates").beginArray();
        for (OpId v : s.candidates)
            w.value((long long)(v));
        w.endArray();
        w.key("rank").value(s.rank);
        w.key("reorders").value(s.reorders);
        w.key("branches").beginArray();
        for (const DecisionBranch &b : s.branches) {
            w.beginObject()
                .key("branch").value(b.branchIdx)
                .key("weight").value(b.weight)
                .key("dynEarly").value(b.dynEarly)
                .key("needEach").value(b.needEach)
                .key("needOne").value(b.needOne)
                .key("outcome").value(decisionOutcomeName(b.outcome))
                .endObject();
        }
        w.endArray();
        w.key("tradeoffs").beginArray();
        for (const TradeoffNote &t : s.tradeoffs) {
            w.beginObject()
                .key("delayed").value(t.delayedBranch)
                .key("against").value(t.againstBranch)
                .key("pairBound").value(t.pairBound)
                .key("staticEarly").value(t.staticEarly)
                .key("dynEarly").value(t.dynEarly)
                .endObject();
        }
        w.endArray();
        w.key("fullUpdates").value(s.fullUpdates);
        w.key("lightUpdates").value(s.lightUpdates);
        w.endObject();
        out += w.str();
        out += "\n";
    }
    return out;
}

} // namespace balance
