/**
 * @file
 * The superblock dependence graph: a single-entry multiple-exit
 * straight-line region represented as a DAG of operations with
 * latency-weighted dependence edges and probability-weighted branch
 * exits (Section 2 of the paper).
 *
 * Representation invariants (checked by validate()):
 *  - Operations are stored in program order and every dependence edge
 *    points forward (src < dst), so operation ids form a topological
 *    order of the DAG.
 *  - Branches appear in program order; consecutive branches are
 *    connected by a control edge with the branch latency, since
 *    superblock exits can never be reordered (Section 4.2).
 *  - Exit probabilities are in [0, 1] and sum to at most 1 + epsilon;
 *    the final branch conventionally absorbs the fall-through mass.
 */

#ifndef BALANCE_GRAPH_SUPERBLOCK_HH
#define BALANCE_GRAPH_SUPERBLOCK_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "machine/op_class.hh"

namespace balance
{

/** Operation identifier; doubles as the topological position. */
using OpId = std::int32_t;

/** Sentinel for "no operation". */
constexpr OpId invalidOp = -1;

/**
 * One node of the dependence graph.
 */
struct Operation
{
    OpId id = invalidOp;       //!< position in program order
    OpClass cls = OpClass::IntAlu;
    int latency = 1;           //!< result latency (default edge weight)
    double exitProb = 0.0;     //!< exit probability; branches only
    int block = 0;             //!< basic-block index within the superblock
    std::string name;          //!< optional display name

    /** @return true for superblock exits. */
    bool isBranch() const { return cls == OpClass::Branch; }
};

/**
 * A dependence from @c src to @c dst: @c dst may not issue earlier
 * than `issue(src) + latency`.
 */
struct DepEdge
{
    OpId src = invalidOp;
    OpId dst = invalidOp;
    int latency = 1;
};

/** Adjacency entry: the neighbor and the edge latency. */
struct Adjacent
{
    OpId op = invalidOp;
    int latency = 1;
};

/**
 * Immutable superblock dependence graph. Build with
 * SuperblockBuilder; all analyses and schedulers take it by
 * const reference.
 */
class Superblock
{
  public:
    friend class SuperblockBuilder;

    /** @return the display name ("gcc.sb0421" etc.). */
    const std::string &name() const { return sbName; }

    /** @return the number of operations. */
    int numOps() const { return int(operations.size()); }

    /** @return the number of dependence edges. */
    int numEdges() const { return edgeCount; }

    /** @return operation @p id. */
    const Operation &
    op(OpId id) const
    {
        return operations[std::size_t(id)];
    }

    /** @return all operations in program order. */
    std::span<const Operation> ops() const { return operations; }

    /** @return successor adjacency of @p id. */
    std::span<const Adjacent>
    succs(OpId id) const
    {
        return {succAdj.data() + succBegin[std::size_t(id)],
                succAdj.data() + succBegin[std::size_t(id) + 1]};
    }

    /** @return predecessor adjacency of @p id. */
    std::span<const Adjacent>
    preds(OpId id) const
    {
        return {predAdj.data() + predBegin[std::size_t(id)],
                predAdj.data() + predBegin[std::size_t(id) + 1]};
    }

    /** @return branch operation ids in program order. */
    const std::vector<OpId> &branches() const { return branchIds; }

    /** @return the number of branches (exits). */
    int numBranches() const { return int(branchIds.size()); }

    /**
     * @return the position of @p id in branches(), or -1 when @p id
     *         is not a branch.
     */
    int branchIndexOf(OpId id) const;

    /** @return the exit probability of branch @p id. */
    double
    exitProb(OpId id) const
    {
        return operations[std::size_t(id)].exitProb;
    }

    /**
     * Execution frequency of this superblock in its program; used to
     * weight dynamic cycle counts across a benchmark suite.
     */
    double execFrequency() const { return frequency; }

    /** @return the number of basic blocks (== numBranches()). */
    int numBlocks() const { return int(branchIds.size()); }

    /**
     * Check all representation invariants; panics on violation.
     * Called by the builder; exposed for tests and the .sb parser.
     */
    void validate() const;

  private:
    std::string sbName;
    double frequency = 1.0;
    std::vector<Operation> operations;
    std::vector<OpId> branchIds;

    /** CSR-style adjacency, built once by the builder. */
    std::vector<Adjacent> succAdj;
    std::vector<Adjacent> predAdj;
    std::vector<std::int32_t> succBegin;
    std::vector<std::int32_t> predBegin;
    int edgeCount = 0;
};

} // namespace balance

#endif // BALANCE_GRAPH_SUPERBLOCK_HH
