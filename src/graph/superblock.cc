#include "graph/superblock.hh"

#include <cmath>

#include "support/diagnostics.hh"

namespace balance
{

int
Superblock::branchIndexOf(OpId id) const
{
    // Branch ids are sorted (program order); binary search.
    int lo = 0;
    int hi = int(branchIds.size()) - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (branchIds[std::size_t(mid)] == id)
            return mid;
        if (branchIds[std::size_t(mid)] < id)
            lo = mid + 1;
        else
            hi = mid - 1;
    }
    return -1;
}

void
Superblock::validate() const
{
    int v = numOps();
    bsAssert(v > 0, "superblock '", sbName, "' has no operations");
    bsAssert(!branchIds.empty(), "superblock '", sbName,
             "' has no exits");
    bsAssert(int(succBegin.size()) == v + 1 &&
                 int(predBegin.size()) == v + 1,
             "adjacency index size mismatch");

    double probSum = 0.0;
    int prevBranch = -1;
    for (OpId b : branchIds) {
        bsAssert(b >= 0 && b < v, "branch id out of range");
        bsAssert(op(b).isBranch(), "non-branch op ", b,
                 " listed as branch");
        bsAssert(b > prevBranch, "branch list not in program order");
        prevBranch = b;
        double p = op(b).exitProb;
        bsAssert(p >= 0.0 && p <= 1.0 + 1e-9,
                 "exit probability out of range: ", p);
        probSum += p;
    }
    bsAssert(probSum <= 1.0 + 1e-6,
             "exit probabilities sum to ", probSum, " > 1");

    for (OpId id = 0; id < v; ++id) {
        const Operation &o = op(id);
        bsAssert(o.id == id, "operation id mismatch at ", id);
        bsAssert(o.latency >= 0, "negative latency on op ", id);
        bsAssert(o.isBranch() == (branchIndexOf(id) >= 0),
                 "branch list inconsistent with op class at ", id);
        for (const Adjacent &e : succs(id)) {
            bsAssert(e.op > id && e.op < v,
                     "edge must point forward in program order: ", id,
                     " -> ", e.op);
            bsAssert(e.latency >= 0, "negative edge latency");
        }
        for (const Adjacent &e : preds(id)) {
            bsAssert(e.op >= 0 && e.op < id,
                     "pred adjacency inconsistent at ", id);
        }
    }

    // Consecutive branches must be ordered by a control edge with at
    // least the branch latency (Section 4.2: branches never reorder).
    for (std::size_t i = 1; i < branchIds.size(); ++i) {
        OpId prev = branchIds[i - 1];
        OpId cur = branchIds[i];
        bool found = false;
        for (const Adjacent &e : succs(prev)) {
            if (e.op == cur && e.latency >= op(prev).latency) {
                found = true;
                break;
            }
        }
        bsAssert(found, "missing control edge between branches ", prev,
                 " and ", cur);
    }
}

} // namespace balance
