#include "graph/analysis.hh"

#include <algorithm>
#include <atomic>

#include "support/diagnostics.hh"

namespace balance
{

namespace
{

std::uint64_t
nextContextUid()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

std::vector<int>
computeEarlyDC(const Superblock &sb)
{
    std::vector<int> early(std::size_t(sb.numOps()), 0);
    // Ids are topological, so one forward sweep suffices.
    for (OpId v = 0; v < sb.numOps(); ++v) {
        for (const Adjacent &e : sb.succs(v)) {
            early[std::size_t(e.op)] =
                std::max(early[std::size_t(e.op)],
                         early[std::size_t(v)] + e.latency);
        }
    }
    return early;
}

std::vector<int>
computeHeightTo(const Superblock &sb, OpId sink)
{
    bsAssert(sink >= 0 && sink < sb.numOps(), "unknown sink ", sink);
    std::vector<int> height(std::size_t(sb.numOps()), -1);
    height[std::size_t(sink)] = 0;
    // Reverse sweep over the topological order.
    for (OpId v = sink; v >= 0; --v) {
        if (height[std::size_t(v)] < 0)
            continue;
        for (const Adjacent &e : sb.preds(v)) {
            int h = height[std::size_t(v)] + e.latency;
            height[std::size_t(e.op)] =
                std::max(height[std::size_t(e.op)], h);
        }
    }
    return height;
}

std::vector<int>
computeLateDC(const Superblock &sb, OpId sink, int anchor)
{
    std::vector<int> height = computeHeightTo(sb, sink);
    std::vector<int> late(std::size_t(sb.numOps()), lateUnconstrained);
    for (OpId v = 0; v < sb.numOps(); ++v) {
        if (height[std::size_t(v)] >= 0)
            late[std::size_t(v)] = anchor - height[std::size_t(v)];
    }
    return late;
}

PredSets::PredSets(const Superblock &sb)
{
    std::size_t v = std::size_t(sb.numOps());
    masks.reserve(v);
    for (std::size_t i = 0; i < v; ++i)
        masks.emplace_back(v);
    for (OpId id = 0; id < OpId(v); ++id) {
        DynBitset &mask = masks[std::size_t(id)];
        for (const Adjacent &e : sb.preds(id)) {
            mask.set(std::size_t(e.op));
            mask |= masks[std::size_t(e.op)];
        }
    }
}

DynBitset
PredSets::closure(OpId v) const
{
    DynBitset out = masks[std::size_t(v)];
    out.set(std::size_t(v));
    return out;
}

GraphContext::GraphContext(const Superblock &sb)
    : block(&sb), contextUid(nextContextUid()),
      early(computeEarlyDC(sb)), predMasks(sb),
      closureCache(std::size_t(sb.numBranches())),
      revCache(std::size_t(sb.numBranches()))
{
    for (int e : early)
        cp = std::max(cp, e);
    heights.reserve(std::size_t(sb.numBranches()));
    for (OpId b : sb.branches())
        heights.push_back(computeHeightTo(sb, b));
}

const std::vector<OpId> &
GraphContext::closureOps(int branchIdx) const
{
    bsAssert(branchIdx >= 0 && branchIdx < int(closureCache.size()),
             "branch index out of range: ", branchIdx);
    std::vector<OpId> &ops = closureCache[std::size_t(branchIdx)];
    if (ops.empty()) {
        // A closure always contains the branch itself, so emptiness
        // reliably marks a slot as not built yet.
        OpId b = block->branches()[std::size_t(branchIdx)];
        const std::vector<int> &height = heightToBranch(branchIdx);
        for (OpId v = 0; v <= b; ++v) {
            if (height[std::size_t(v)] >= 0)
                ops.push_back(v);
        }
    }
    return ops;
}

const GraphContext::ReversedClosure &
GraphContext::reversedClosure(int branchIdx) const
{
    bsAssert(branchIdx >= 0 && branchIdx < int(revCache.size()),
             "branch index out of range: ", branchIdx);
    std::unique_ptr<ReversedClosure> &slot =
        revCache[std::size_t(branchIdx)];
    if (!slot) {
        OpId b = block->branches()[std::size_t(branchIdx)];
        slot = std::make_unique<ReversedClosure>();
        slot->dag = Dag::reversedClosure(*block, predMasks.closure(b),
                                         &slot->newToOld);
    }
    return *slot;
}

const std::vector<int> &
GraphContext::heightToBranch(int branchIdx) const
{
    bsAssert(branchIdx >= 0 && branchIdx < int(heights.size()),
             "branch index out of range: ", branchIdx);
    return heights[std::size_t(branchIdx)];
}

} // namespace balance
