/**
 * @file
 * Graphviz DOT export for superblocks, for debugging and for the
 * example tools. Branch nodes are drawn as boxes labeled with their
 * exit probability; non-unit edge latencies are labeled.
 */

#ifndef BALANCE_GRAPH_DOT_HH
#define BALANCE_GRAPH_DOT_HH

#include <string>

#include "graph/superblock.hh"

namespace balance
{

/** Render @p sb as a DOT digraph. */
std::string toDot(const Superblock &sb);

} // namespace balance

#endif // BALANCE_GRAPH_DOT_HH
