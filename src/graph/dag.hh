/**
 * @file
 * Generic DAG with topologically numbered nodes, used where a bound
 * must run on something other than the superblock itself (reversed
 * subgraphs for LateRC). Edges always point from a lower to a higher
 * node id.
 *
 * The adjacency is CSR (one flat edge array plus an offset array per
 * direction) rather than per-node vectors: a Dag is built in two
 * counted passes and touched by tight analysis loops, so the flat
 * form kills per-node allocations and keeps neighbor walks on one
 * cache line stream. GraphContext caches the per-branch reversed
 * closures built from this type so every bound that anchors at a
 * branch shares one copy (see analysis.hh).
 */

#ifndef BALANCE_GRAPH_DAG_HH
#define BALANCE_GRAPH_DAG_HH

#include <cstdint>
#include <span>
#include <vector>

#include "graph/superblock.hh"
#include "support/bitset.hh"

namespace balance
{

/** Flat-adjacency DAG (see file comment). */
struct Dag
{
    /** Class of each node (determines the resource pool). */
    std::vector<OpClass> cls;

    /** Flat predecessor edges, grouped by node. */
    std::vector<Adjacent> predAdj;
    /** Flat successor edges, grouped by node. */
    std::vector<Adjacent> succAdj;
    /** predAdj begin offset per node; size n() + 1. */
    std::vector<std::int32_t> predOff;
    /** succAdj begin offset per node; size n() + 1. */
    std::vector<std::int32_t> succOff;

    /** @return the number of nodes. */
    int n() const { return int(cls.size()); }

    /** @return predecessor adjacency of node @p v. */
    std::span<const Adjacent>
    preds(int v) const
    {
        return {predAdj.data() + predOff[std::size_t(v)],
                predAdj.data() + predOff[std::size_t(v) + 1]};
    }

    /** @return successor adjacency of node @p v. */
    std::span<const Adjacent>
    succs(int v) const
    {
        return {succAdj.data() + succOff[std::size_t(v)],
                succAdj.data() + succOff[std::size_t(v) + 1]};
    }

    /** @return the in-degree of node @p v. */
    int
    numPreds(int v) const
    {
        return int(predOff[std::size_t(v) + 1] - predOff[std::size_t(v)]);
    }

    /** Wrap a whole superblock (ids map one-to-one). */
    static Dag fromSuperblock(const Superblock &sb);

    /**
     * Build the reversed subgraph over @p nodes (typically
     * closure(b)): node order is the reverse of the original program
     * order, every edge flips direction and keeps its latency.
     *
     * @param sb The source superblock.
     * @param nodes Mask of operations to include.
     * @param newToOld Receives, for each new node id, the original
     *        OpId (may be null).
     */
    static Dag reversedClosure(const Superblock &sb, const DynBitset &nodes,
                               std::vector<OpId> *newToOld);
};

/**
 * Longest path from each node of @p dag to @p sink (nodes without a
 * path get -1; sink gets 0). Mirrors computeHeightTo for Dag.
 */
std::vector<int> dagHeightTo(const Dag &dag, int sink);

} // namespace balance

#endif // BALANCE_GRAPH_DAG_HH
