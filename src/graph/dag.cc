#include "graph/dag.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace balance
{

Dag
Dag::fromSuperblock(const Superblock &sb)
{
    Dag dag;
    std::size_t v = std::size_t(sb.numOps());
    dag.cls.resize(v);
    dag.predOff.resize(v + 1, 0);
    dag.succOff.resize(v + 1, 0);
    for (OpId id = 0; id < OpId(v); ++id) {
        dag.cls[std::size_t(id)] = sb.op(id).cls;
        dag.predOff[std::size_t(id) + 1] =
            dag.predOff[std::size_t(id)] +
            std::int32_t(sb.preds(id).size());
        dag.succOff[std::size_t(id) + 1] =
            dag.succOff[std::size_t(id)] +
            std::int32_t(sb.succs(id).size());
    }
    dag.predAdj.reserve(std::size_t(dag.predOff[v]));
    dag.succAdj.reserve(std::size_t(dag.succOff[v]));
    for (OpId id = 0; id < OpId(v); ++id) {
        auto p = sb.preds(id);
        dag.predAdj.insert(dag.predAdj.end(), p.begin(), p.end());
        auto s = sb.succs(id);
        dag.succAdj.insert(dag.succAdj.end(), s.begin(), s.end());
    }
    return dag;
}

Dag
Dag::reversedClosure(const Superblock &sb, const DynBitset &nodes,
                     std::vector<OpId> *newToOld)
{
    bsAssert(nodes.size() == std::size_t(sb.numOps()),
             "node mask universe mismatch");

    // New ids in reverse program order: the last original op becomes
    // node 0. Original edges point forward, so flipped edges point
    // forward in the new numbering, preserving topological ids.
    std::vector<OpId> order = nodes.toIndices().empty()
        ? std::vector<OpId>{}
        : [&] {
              auto idx = nodes.toIndices();
              std::vector<OpId> ord(idx.rbegin(), idx.rend());
              return ord;
          }();
    bsAssert(!order.empty(), "reversedClosure of empty node set");

    std::vector<int> newIdOf(std::size_t(sb.numOps()), -1);
    for (std::size_t i = 0; i < order.size(); ++i)
        newIdOf[std::size_t(order[i])] = int(i);

    Dag dag;
    dag.cls.resize(order.size());
    dag.predOff.assign(order.size() + 1, 0);
    dag.succOff.assign(order.size() + 1, 0);

    // Counting pass: original successors inside the mask become
    // predecessors of the new node and vice versa.
    for (std::size_t i = 0; i < order.size(); ++i) {
        OpId orig = order[i];
        dag.cls[i] = sb.op(orig).cls;
        std::int32_t np = 0;
        for (const Adjacent &e : sb.succs(orig)) {
            if (newIdOf[std::size_t(e.op)] >= 0)
                ++np;
        }
        std::int32_t ns = 0;
        for (const Adjacent &e : sb.preds(orig)) {
            if (newIdOf[std::size_t(e.op)] >= 0)
                ++ns;
        }
        dag.predOff[i + 1] = dag.predOff[i] + np;
        dag.succOff[i + 1] = dag.succOff[i] + ns;
    }

    // Fill pass, preserving the original per-node edge order.
    dag.predAdj.resize(std::size_t(dag.predOff[order.size()]));
    dag.succAdj.resize(std::size_t(dag.succOff[order.size()]));
    for (std::size_t i = 0; i < order.size(); ++i) {
        OpId orig = order[i];
        std::int32_t p = dag.predOff[i];
        for (const Adjacent &e : sb.succs(orig)) {
            int nid = newIdOf[std::size_t(e.op)];
            if (nid >= 0)
                dag.predAdj[std::size_t(p++)] = {OpId(nid), e.latency};
        }
        std::int32_t s = dag.succOff[i];
        for (const Adjacent &e : sb.preds(orig)) {
            int nid = newIdOf[std::size_t(e.op)];
            if (nid >= 0)
                dag.succAdj[std::size_t(s++)] = {OpId(nid), e.latency};
        }
    }
    if (newToOld)
        *newToOld = std::move(order);
    return dag;
}

std::vector<int>
dagHeightTo(const Dag &dag, int sink)
{
    bsAssert(sink >= 0 && sink < dag.n(), "unknown sink ", sink);
    std::vector<int> height(std::size_t(dag.n()), -1);
    height[std::size_t(sink)] = 0;
    for (int v = sink; v >= 0; --v) {
        if (height[std::size_t(v)] < 0)
            continue;
        for (const Adjacent &e : dag.preds(v)) {
            height[std::size_t(e.op)] =
                std::max(height[std::size_t(e.op)],
                         height[std::size_t(v)] + e.latency);
        }
    }
    return height;
}

} // namespace balance
