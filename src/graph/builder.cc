#include "graph/builder.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace balance
{

SuperblockBuilder::SuperblockBuilder(std::string name)
    : sbName(std::move(name))
{
}

OpId
SuperblockBuilder::addOp(OpClass cls, int latency, std::string name)
{
    bsAssert(cls != OpClass::Branch,
             "use addBranch() for branch operations");
    bsAssert(latency >= 0, "negative latency");
    Operation o;
    o.id = OpId(ops.size());
    o.cls = cls;
    o.latency = latency;
    o.name = std::move(name);
    ops.push_back(std::move(o));
    return ops.back().id;
}

OpId
SuperblockBuilder::addBranch(double exitProb, std::string name, int latency)
{
    bsAssert(exitProb >= 0.0 && exitProb <= 1.0 + 1e-9,
             "exit probability out of range: ", exitProb);
    Operation o;
    o.id = OpId(ops.size());
    o.cls = OpClass::Branch;
    o.latency = latency;
    o.exitProb = exitProb;
    o.name = std::move(name);
    ops.push_back(std::move(o));
    branchIds.push_back(ops.back().id);
    return ops.back().id;
}

OpId
SuperblockBuilder::addNonPipelinedOp(OpClass cls, int occupancy,
                                     int resultLatency, std::string name)
{
    bsAssert(occupancy >= 1, "occupancy must be >= 1, got ", occupancy);
    bsAssert(resultLatency >= 0, "negative result latency");
    // The final pseudo-op carries whatever latency remains after the
    // unit-latency chain; earlier pseudo-ops only keep the unit busy.
    int tailLatency = std::max(resultLatency - (occupancy - 1), 0);
    OpId prev = invalidOp;
    for (int stage = 0; stage < occupancy; ++stage) {
        bool last = stage + 1 == occupancy;
        std::string stageName = name.empty()
            ? std::string()
            : name + (occupancy > 1 ? "." + std::to_string(stage)
                                    : std::string());
        OpId cur = addOp(cls, last ? tailLatency : 1,
                         std::move(stageName));
        if (prev != invalidOp)
            addEdge(prev, cur, 1);
        prev = cur;
    }
    return prev;
}

void
SuperblockBuilder::addEdge(OpId src, OpId dst, int latency)
{
    bsAssert(src >= 0 && src < OpId(ops.size()), "unknown src op ", src);
    bsAssert(dst >= 0 && dst < OpId(ops.size()), "unknown dst op ", dst);
    bsAssert(src < dst,
             "dependence edges must point forward in program order (",
             src, " -> ", dst, ")");
    if (latency < 0)
        latency = ops[std::size_t(src)].latency;
    edges.push_back({src, dst, latency});
}

void
SuperblockBuilder::setFrequency(double freq)
{
    bsAssert(freq >= 0.0, "negative execution frequency");
    frequency = freq;
}

Superblock
SuperblockBuilder::build(bool anchorLooseOpsToLastExit)
{
    bsAssert(!ops.empty(), "cannot build an empty superblock");
    bsAssert(!branchIds.empty(), "superblock '", sbName,
             "' needs at least one exit");

    // Control edges between consecutive branches keep exits ordered.
    for (std::size_t i = 1; i < branchIds.size(); ++i) {
        edges.push_back({branchIds[i - 1], branchIds[i],
                         ops[std::size_t(branchIds[i - 1])].latency});
    }

    if (anchorLooseOpsToLastExit) {
        // An op with no path to any branch would be dead code; anchor
        // it to the final exit where its value is live out.
        std::vector<char> reaches(ops.size(), 0);
        for (OpId b : branchIds)
            reaches[std::size_t(b)] = 1;
        // Edges point forward, so one reverse sweep suffices once we
        // index edges by source. Sort by src descending via stable
        // pass over a bucket index.
        std::vector<std::vector<OpId>> succOf(ops.size());
        for (const DepEdge &e : edges)
            succOf[std::size_t(e.src)].push_back(e.dst);
        for (OpId v = OpId(ops.size()) - 1; v >= 0; --v) {
            for (OpId s : succOf[std::size_t(v)]) {
                if (reaches[std::size_t(s)])
                    reaches[std::size_t(v)] = 1;
            }
        }
        OpId last = branchIds.back();
        for (OpId v = 0; v < OpId(ops.size()); ++v) {
            if (!reaches[std::size_t(v)] && v < last)
                edges.push_back({v, last, ops[std::size_t(v)].latency});
        }
    }

    // Deduplicate parallel edges, keeping the maximum latency: the
    // tighter constraint subsumes the looser one.
    std::sort(edges.begin(), edges.end(),
              [](const DepEdge &a, const DepEdge &b) {
                  if (a.src != b.src)
                      return a.src < b.src;
                  if (a.dst != b.dst)
                      return a.dst < b.dst;
                  return a.latency > b.latency;
              });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const DepEdge &a, const DepEdge &b) {
                                return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());

    // Assign block indices: block k holds the ops after branch k-1 up
    // to and including branch k.
    {
        int block = 0;
        for (auto &o : ops) {
            o.block = block;
            if (o.isBranch())
                ++block;
        }
        // Ops after the final branch belong to the last block.
        int lastBlock = int(branchIds.size()) - 1;
        for (auto &o : ops)
            o.block = std::min(o.block, lastBlock);
    }

    Superblock sb;
    sb.sbName = std::move(sbName);
    sb.frequency = frequency;
    sb.operations = std::move(ops);
    sb.branchIds = std::move(branchIds);
    sb.edgeCount = int(edges.size());

    // Build CSR adjacency in both directions.
    std::size_t v = sb.operations.size();
    sb.succBegin.assign(v + 1, 0);
    sb.predBegin.assign(v + 1, 0);
    for (const DepEdge &e : edges) {
        ++sb.succBegin[std::size_t(e.src) + 1];
        ++sb.predBegin[std::size_t(e.dst) + 1];
    }
    for (std::size_t i = 1; i <= v; ++i) {
        sb.succBegin[i] += sb.succBegin[i - 1];
        sb.predBegin[i] += sb.predBegin[i - 1];
    }
    sb.succAdj.resize(edges.size());
    sb.predAdj.resize(edges.size());
    std::vector<std::int32_t> succFill(sb.succBegin.begin(),
                                       sb.succBegin.end() - 1);
    std::vector<std::int32_t> predFill(sb.predBegin.begin(),
                                       sb.predBegin.end() - 1);
    for (const DepEdge &e : edges) {
        sb.succAdj[std::size_t(succFill[std::size_t(e.src)]++)] =
            {e.dst, e.latency};
        sb.predAdj[std::size_t(predFill[std::size_t(e.dst)]++)] =
            {e.src, e.latency};
    }

    sb.validate();

    // Leave the builder reusable-but-empty.
    ops.clear();
    edges.clear();
    branchIds.clear();
    frequency = 1.0;

    return sb;
}

} // namespace balance
