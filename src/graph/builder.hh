/**
 * @file
 * Mutable construction interface for Superblock. The builder accepts
 * operations in program order and forward edges, then finalizes the
 * CSR adjacency, block indices, and branch control edges.
 */

#ifndef BALANCE_GRAPH_BUILDER_HH
#define BALANCE_GRAPH_BUILDER_HH

#include <string>
#include <vector>

#include "graph/superblock.hh"

namespace balance
{

/**
 * Incremental superblock builder.
 *
 * Usage:
 * @code
 *   SuperblockBuilder b("example");
 *   OpId a = b.addOp(OpClass::IntAlu);
 *   OpId x = b.addBranch(0.3);
 *   b.addEdge(a, x);
 *   Superblock sb = b.build();
 * @endcode
 */
class SuperblockBuilder
{
  public:
    /** Start a superblock with the given display name. */
    explicit SuperblockBuilder(std::string name);

    /**
     * Append a non-branch operation in program order.
     *
     * @param cls Operation class (must not be Branch; use addBranch).
     * @param latency Result latency; defaults to the class-typical
     *        unit latency. Used as the default latency of outgoing
     *        edges.
     * @param name Optional display name.
     * @return the new operation's id.
     */
    OpId addOp(OpClass cls, int latency = Latencies::unit,
               std::string name = "");

    /**
     * Append a branch (superblock exit) in program order.
     *
     * @param exitProb Probability that execution leaves through this
     *        exit.
     * @param name Optional display name.
     * @param latency Branch latency; defaults to l_br = 1.
     * @return the new branch's id.
     */
    OpId addBranch(double exitProb, std::string name = "",
                   int latency = Latencies::branch);

    /**
     * Model a non-fully-pipelined operation the way Rim & Jain do
     * (Section 4.1): an operation occupying its unit for
     * @p occupancy consecutive cycles becomes a chain of
     * @p occupancy fully pipelined pseudo-operations of the same
     * class. The returned id is the final pseudo-operation — attach
     * consumers to it; its result latency is the remainder of
     * @p resultLatency after the chain.
     *
     * This expansion is exact for every lower bound in src/bounds
     * (they are relaxations). For the forward schedulers it is an
     * approximation: the pseudo-ops of two expanded operations may
     * interleave on the same unit, which real non-pipelined hardware
     * would forbid, so produced schedules are optimistic by at most
     * the interleaving. All six paper configurations are fully
     * pipelined, so nothing in the reproduction depends on this.
     *
     * @param cls Operation class.
     * @param occupancy Cycles the unit stays busy (>= 1).
     * @param resultLatency Cycles from issue until the result is
     *        available (>= occupancy is typical).
     * @param name Optional display name (pseudo-ops get suffixes).
     * @return the id of the final pseudo-operation.
     */
    OpId addNonPipelinedOp(OpClass cls, int occupancy,
                           int resultLatency, std::string name = "");

    /**
     * Add a dependence edge.
     *
     * @param src Producer (must precede @p dst in program order).
     * @param dst Consumer.
     * @param latency Edge latency; -1 means "use src's result
     *        latency". Duplicate (src, dst) edges keep the maximum
     *        latency.
     */
    void addEdge(OpId src, OpId dst, int latency = -1);

    /** Set the superblock's execution frequency (default 1). */
    void setFrequency(double freq);

    /** @return the number of operations added so far. */
    int numOps() const { return int(ops.size()); }

    /**
     * Finalize into an immutable, validated Superblock.
     *
     * Finalization inserts any missing control edges between
     * consecutive branches (latency = branch latency) and, when
     * @p anchorLooseOpsToLastExit is set, adds an edge from every
     * operation with no path to any branch to the final branch —
     * modelling that such values are live out at the fall-through
     * exit.
     *
     * The builder is left empty afterwards.
     */
    Superblock build(bool anchorLooseOpsToLastExit = false);

  private:
    std::string sbName;
    double frequency = 1.0;
    std::vector<Operation> ops;
    std::vector<DepEdge> edges;
    std::vector<OpId> branchIds;
};

} // namespace balance

#endif // BALANCE_GRAPH_BUILDER_HH
