/**
 * @file
 * Dependence-only analyses over a superblock (Section 2):
 *
 *  - EarlyDC[v]: earliest issue cycle of v when resources are ignored
 *    (longest latency path from the entry).
 *  - height_b[v]: the longest latency path from v to branch b; the
 *    dependence late time is LateDC_b[v] = anchor(b) - height_b[v].
 *  - Transitive predecessor masks: the subgraph "rooted at" an
 *    operation, used by every bound in Section 4.
 *
 * All results are plain vectors indexed by OpId; the analyses are
 * pure functions of the (immutable) superblock, so callers cache as
 * they see fit. GraphContext bundles the commonly shared pieces.
 */

#ifndef BALANCE_GRAPH_ANALYSIS_HH
#define BALANCE_GRAPH_ANALYSIS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/dag.hh"
#include "graph/superblock.hh"
#include "support/bitset.hh"

namespace balance
{

/**
 * Earliest dependence-constrained issue cycle for each operation:
 * EarlyDC[v] = max over predecessors p of EarlyDC[p] + latency(p, v),
 * and 0 for entry operations.
 */
std::vector<int> computeEarlyDC(const Superblock &sb);

/**
 * Longest latency path from each operation to @p sink, restricted to
 * predecessors of @p sink.
 *
 * @return height[v] such that in any schedule
 *         issue(sink) >= issue(v) + height[v] for predecessors v of
 *         @p sink; height[sink] = 0 and height[v] = -1 for
 *         operations with no path to @p sink.
 */
std::vector<int> computeHeightTo(const Superblock &sb, OpId sink);

/**
 * Dependence late times relative to an anchor cycle for @p sink:
 * LateDC[v] = anchor - height[v]. Operations unrelated to @p sink get
 * a sentinel of INT_MAX / 4 (never constraining).
 *
 * @param sb The superblock.
 * @param sink The branch (or op) whose issue is anchored.
 * @param anchor The issue cycle assumed for @p sink.
 */
std::vector<int> computeLateDC(const Superblock &sb, OpId sink, int anchor);

/** Sentinel late time for operations that do not constrain the sink. */
constexpr int lateUnconstrained = 1 << 28;

/**
 * Transitive predecessor masks. preds(v) excludes v itself;
 * closure(v) = preds(v) | {v} is the "subgraph rooted at v" of the
 * paper.
 */
class PredSets
{
  public:
    /** Build masks for every operation of @p sb. */
    explicit PredSets(const Superblock &sb);

    /** @return the transitive predecessors of @p v (excluding v). */
    const DynBitset &preds(OpId v) const
    {
        return masks[std::size_t(v)];
    }

    /** @return preds(v) plus v itself. */
    DynBitset closure(OpId v) const;

    /** @return true when @p anc is a strict transitive pred of @p v. */
    bool
    isPred(OpId anc, OpId v) const
    {
        return masks[std::size_t(v)].test(std::size_t(anc));
    }

  private:
    std::vector<DynBitset> masks;
};

/**
 * Shared per-superblock analysis bundle: EarlyDC, per-branch heights,
 * and predecessor masks, computed once and reused by the bounds and
 * heuristics.
 */
class GraphContext
{
  public:
    /** Analyze @p sb; the superblock must outlive the context. */
    explicit GraphContext(const Superblock &sb);

    /** The context keeps a pointer: temporaries are a bug. */
    explicit GraphContext(Superblock &&) = delete;

    /** @return the analyzed superblock. */
    const Superblock &sb() const { return *block; }

    /**
     * Process-unique id of this context, assigned at construction and
     * never reused. Caches that outlive a context (e.g. SchedScratch's
     * priority tables) key on this instead of object addresses, which
     * allocators recycle.
     */
    std::uint64_t uid() const { return contextUid; }

    /** @return EarlyDC for all operations. */
    const std::vector<int> &earlyDC() const { return early; }

    /** @return the dependence critical path max_v EarlyDC[v]. */
    int criticalPath() const { return cp; }

    /**
     * @return height-to-branch for branch index @p branchIdx
     *         (position in sb().branches()).
     */
    const std::vector<int> &heightToBranch(int branchIdx) const;

    /** @return transitive-predecessor masks. */
    const PredSets &predSets() const { return predMasks; }

    /**
     * Operations of closure(branch) — every op with a path to the
     * branch, plus the branch itself — in ascending program order.
     * Built lazily on first request and cached; shared by every
     * bound sweep and BranchDynamics instance that anchors at the
     * branch.
     *
     * Lazy caches are NOT synchronized: one GraphContext must not be
     * probed from several threads concurrently (the eval drivers
     * build one context per task, which is the supported pattern).
     *
     * @param branchIdx Position in sb().branches().
     */
    const std::vector<OpId> &closureOps(int branchIdx) const;

    /** A branch's reversed predecessor closure, cached for LateRC. */
    struct ReversedClosure
    {
        Dag dag;                    //!< reversed subgraph (CSR)
        std::vector<OpId> newToOld; //!< new node id -> original OpId
    };

    /**
     * The reversed closure(branch) subgraph, built lazily once per
     * branch and shared across every pair/triple/LateRC computation
     * that anchors at it. Same thread-safety caveat as closureOps().
     */
    const ReversedClosure &reversedClosure(int branchIdx) const;

  private:
    const Superblock *block;
    std::uint64_t contextUid;
    std::vector<int> early;
    int cp = 0;
    std::vector<std::vector<int>> heights;
    PredSets predMasks;
    mutable std::vector<std::vector<OpId>> closureCache;
    mutable std::vector<std::unique_ptr<ReversedClosure>> revCache;
};

} // namespace balance

#endif // BALANCE_GRAPH_ANALYSIS_HH
