#include "graph/dot.hh"

#include <sstream>

#include "support/table.hh"

namespace balance
{

std::string
toDot(const Superblock &sb)
{
    std::ostringstream oss;
    oss << "digraph \"" << sb.name() << "\" {\n";
    oss << "  rankdir=TB;\n";
    for (const Operation &o : sb.ops()) {
        oss << "  n" << o.id << " [label=\"" << o.id;
        if (!o.name.empty())
            oss << "\\n" << o.name;
        oss << "\\n" << opClassName(o.cls);
        if (o.isBranch())
            oss << " p=" << fmtDouble(o.exitProb, 2);
        oss << "\"";
        if (o.isBranch())
            oss << ", shape=box, style=bold";
        oss << "];\n";
    }
    for (const Operation &o : sb.ops()) {
        for (const Adjacent &e : sb.succs(o.id)) {
            oss << "  n" << o.id << " -> n" << e.op;
            if (e.latency != 1)
                oss << " [label=\"" << e.latency << "\"]";
            oss << ";\n";
        }
    }
    oss << "}\n";
    return oss.str();
}

} // namespace balance
