/**
 * @file
 * Hand-built superblocks reproducing the structural properties of
 * the paper's motivating figures. The original drawings are only
 * partially recoverable from the text, so each fixture here is
 * constructed to satisfy the *verifiable claims* the paper makes
 * about its figure; the claims are unit-tested in
 * tests/workload/paper_figures_test.cc and exercised by
 * examples/paper_figures.cc.
 *
 * All fixtures target a two-issue general-purpose machine (GP2)
 * with unit latencies unless stated otherwise.
 */

#ifndef BALANCE_WORKLOAD_PAPER_FIGURES_HH
#define BALANCE_WORKLOAD_PAPER_FIGURES_HH

#include "graph/superblock.hh"

namespace balance
{

/**
 * Figure 1a: a 17-operation superblock with a 3-predecessor side
 * exit (probability @p sideProb) and a 16-predecessor final exit.
 * Claims: EarlyDC(final) = 7 but the resource bound is
 * ceil(16/2) = 8; the one-cycle gap lets the side exit issue at
 * cycle 2 without delaying the final exit (Successive Retirement
 * finds this; Critical Path delays the side exit).
 */
Superblock paperFigure1(double sideProb = 0.2);

/**
 * Figure 2a: 7 operations. Branch 3 (preds 0,1,2) is resource
 * bound to cycle 2; branch 6 is resource bound to cycle 3 and
 * dependence-needs operation 4 in cycle 0 (chain 4 -(2)-> 5 -> 6).
 * Claims: a pure help-count heuristic schedules 0,1,2 first and
 * delays branch 6 to cycle 4; the need-aware schedule issues
 * {0,4} first and achieves (2, 3).
 */
Superblock paperFigure2(double sideProb = 0.4);

/**
 * Figure 3a: 10 operations. Branch 3 as in Figure 2; branch 9's
 * predecessors include a chain 4 -> 5 -> {6,7,8} -> 9 whose
 * dependence distance understates the true distance because 6,7,8
 * cannot issue in one cycle on a two-issue machine.
 * Claims: LateDC anchored at the resource-aware early time of
 * branch 9 says operation 4 may issue in cycle 2 (and 5 in cycle
 * 3); LateRC tightens both by one cycle.
 */
Superblock paperFigure3(double sideProb = 0.4);

/**
 * Figure 4a (spirit): a superblock where the two exits genuinely
 * compete: the joint issue-time frontier is {(2,5), (3,4)} for
 * (side, final), so the optimal schedule depends on the side-exit
 * probability @p sideProb with the crossover at 0.5.
 * Claims: the pairwise bound discovers both frontier points; the
 * exact scheduler picks (3,4) below the crossover and (2,5) above.
 */
Superblock paperFigure4(double sideProb);

/**
 * Figure 6: the ERC illustration. Branch 8's naive resource bound
 * is ceil(8/2) = 4, but operations {0,2,3,4,5} must all issue by
 * cycle 1 for that, which exceeds the four available slots; the
 * ERC-based bound (Hu / Section 5.1 Step 2) yields 5.
 */
Superblock paperFigure6();

} // namespace balance

#endif // BALANCE_WORKLOAD_PAPER_FIGURES_HH
