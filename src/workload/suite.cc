#include "workload/suite.hh"

#include <cmath>

#include "support/diagnostics.hh"

namespace balance
{

std::vector<ProgramSpec>
specInt95Specs()
{
    // Counts sum to 6615 (the paper's population). Shapes vary the
    // way the real programs do: gcc/go large and branchy with rare
    // giant regions, compress small and tight, ijpeg loop-heavy with
    // long blocks, li/perl call-dense with short blocks.
    std::vector<ProgramSpec> specs;

    auto add = [&](std::string name, int count,
                   auto &&tweak) {
        ProgramSpec s;
        s.name = std::move(name);
        s.superblockCount = count;
        tweak(s.params);
        specs.push_back(std::move(s));
    };

    add("gcc", 1500, [](GeneratorParams &p) {
        p.blockGeoP = 0.30;
        p.opsPerBlockMu = 1.7;
        p.opsPerBlockSigma = 0.8;
        p.giantProb = 0.002;
        p.giantMinBlocks = 40;
        p.giantMaxBlocks = 200;
    });
    add("go", 800, [](GeneratorParams &p) {
        p.blockGeoP = 0.28;
        p.opsPerBlockMu = 1.9;
        p.opsPerBlockSigma = 0.8;
        p.giantProb = 0.00125;
        p.giantMinBlocks = 30;
        p.giantMaxBlocks = 120;
    });
    add("compress", 150, [](GeneratorParams &p) {
        p.blockGeoP = 0.50;
        p.opsPerBlockMu = 1.4;
        p.opsPerBlockSigma = 0.5;
    });
    add("ijpeg", 500, [](GeneratorParams &p) {
        p.blockGeoP = 0.55;
        p.opsPerBlockMu = 2.3;
        p.opsPerBlockSigma = 0.7;
        p.memFraction = 0.34;
    });
    add("li", 450, [](GeneratorParams &p) {
        p.blockGeoP = 0.45;
        p.opsPerBlockMu = 1.3;
        p.opsPerBlockSigma = 0.5;
        p.sideExitMax = 0.65;
    });
    add("m88ksim", 640, [](GeneratorParams &p) {
        p.blockGeoP = 0.40;
        p.opsPerBlockMu = 1.6;
        p.opsPerBlockSigma = 0.6;
    });
    add("perl", 900, [](GeneratorParams &p) {
        p.blockGeoP = 0.38;
        p.opsPerBlockMu = 1.5;
        p.opsPerBlockSigma = 0.7;
        p.sideExitMax = 0.60;
    });
    add("vortex", 1675, [](GeneratorParams &p) {
        p.blockGeoP = 0.42;
        p.opsPerBlockMu = 1.5;
        p.opsPerBlockSigma = 0.6;
        p.memFraction = 0.32;
    });

    int total = 0;
    for (const auto &s : specs)
        total += s.superblockCount;
    bsAssert(total == 6615, "suite must total 6615 superblocks, got ",
             total);
    return specs;
}

BenchmarkProgram
buildProgram(const ProgramSpec &spec, std::uint64_t suiteSeed,
             double scale)
{
    bsAssert(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");

    // Derive a per-program seed from the suite seed and the name so
    // programs are independent of each other and of the scale.
    std::uint64_t seed = suiteSeed;
    for (char c : spec.name)
        seed = seed * 1099511628211ULL + std::uint64_t(c);
    Rng rng(seed);

    int count = std::max(
        1, int(std::llround(scale * spec.superblockCount)));

    BenchmarkProgram prog;
    prog.name = spec.name;
    prog.superblocks.reserve(std::size_t(count));
    for (int i = 0; i < count; ++i) {
        Rng child = rng.fork();
        prog.superblocks.push_back(generateSuperblock(
            child, spec.params,
            spec.name + ".sb" + std::to_string(i)));
    }
    return prog;
}

std::vector<BenchmarkProgram>
buildSuite(const SuiteOptions &opts)
{
    std::vector<BenchmarkProgram> suite;
    for (const ProgramSpec &spec : specInt95Specs())
        suite.push_back(buildProgram(spec, opts.seed, opts.scale));
    return suite;
}

int
suiteSize(const std::vector<BenchmarkProgram> &suite)
{
    int total = 0;
    for (const auto &prog : suite)
        total += int(prog.superblocks.size());
    return total;
}

} // namespace balance
