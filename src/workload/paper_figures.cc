#include "workload/paper_figures.hh"

#include "graph/builder.hh"
#include "support/diagnostics.hh"

namespace balance
{

Superblock
paperFigure1(double sideProb)
{
    SuperblockBuilder b("paper.fig1");
    // Block 1: three independent operations feeding the side exit.
    OpId o0 = b.addOp(OpClass::IntAlu, 1, "i0");
    OpId o1 = b.addOp(OpClass::IntAlu, 1, "i1");
    OpId o2 = b.addOp(OpClass::IntAlu, 1, "i2");
    OpId br3 = b.addBranch(sideProb, "side");
    b.addEdge(o0, br3);
    b.addEdge(o1, br3);
    b.addEdge(o2, br3);

    // Block 2: a 7-op dependence chain (dependence height 7 to the
    // final exit) plus five independent operations; together with
    // block 1 the final exit has 16 predecessors.
    OpId chain[7];
    for (int i = 0; i < 7; ++i)
        chain[i] = b.addOp(OpClass::IntAlu, 1, "c" + std::to_string(i));
    for (int i = 1; i < 7; ++i)
        b.addEdge(chain[i - 1], chain[i]);
    OpId plain[5];
    for (int i = 0; i < 5; ++i)
        plain[i] = b.addOp(OpClass::IntAlu, 1, "p" + std::to_string(i));
    OpId br16 = b.addBranch(1.0 - sideProb, "final");
    b.addEdge(chain[6], br16);
    for (OpId p : plain)
        b.addEdge(p, br16);
    // Block-1 operations reach the final exit through the control
    // edge br3 -> br16 that the builder inserts.
    return b.build();
}

Superblock
paperFigure2(double sideProb)
{
    SuperblockBuilder b("paper.fig2");
    OpId o0 = b.addOp(OpClass::IntAlu, 1, "i0");
    OpId o1 = b.addOp(OpClass::IntAlu, 1, "i1");
    OpId o2 = b.addOp(OpClass::IntAlu, 1, "i2");
    OpId br3 = b.addBranch(sideProb, "side");
    b.addEdge(o0, br3);
    b.addEdge(o1, br3);
    b.addEdge(o2, br3);

    // Three-cycle dependence chain from op 4 to branch 6.
    OpId o4 = b.addOp(OpClass::IntAlu, 2, "c0"); // 2-cycle producer
    OpId o5 = b.addOp(OpClass::IntAlu, 1, "c1");
    OpId br6 = b.addBranch(1.0 - sideProb, "final");
    b.addEdge(o4, o5); // latency 2
    b.addEdge(o5, br6);
    return b.build();
}

Superblock
paperFigure3(double sideProb)
{
    SuperblockBuilder b("paper.fig3");
    OpId o0 = b.addOp(OpClass::IntAlu, 1, "i0");
    OpId o1 = b.addOp(OpClass::IntAlu, 1, "i1");
    OpId o2 = b.addOp(OpClass::IntAlu, 1, "i2");
    OpId br3 = b.addBranch(sideProb, "side");
    b.addEdge(o0, br3);
    b.addEdge(o1, br3);
    b.addEdge(o2, br3);

    OpId o4 = b.addOp(OpClass::IntAlu, 1, "c0");
    OpId o5 = b.addOp(OpClass::IntAlu, 1, "c1");
    OpId o6 = b.addOp(OpClass::IntAlu, 1, "f0");
    OpId o7 = b.addOp(OpClass::IntAlu, 1, "f1");
    OpId o8 = b.addOp(OpClass::IntAlu, 1, "f2");
    OpId br9 = b.addBranch(1.0 - sideProb, "final");
    b.addEdge(o4, o5);
    b.addEdge(o5, o6);
    b.addEdge(o5, o7);
    b.addEdge(o5, o8);
    b.addEdge(o6, br9);
    b.addEdge(o7, br9);
    b.addEdge(o8, br9);
    return b.build();
}

Superblock
paperFigure4(double sideProb)
{
    bsAssert(sideProb >= 0.0 && sideProb <= 1.0,
             "side probability out of range");
    SuperblockBuilder b("paper.fig4");
    // Block 1: four independent operations feeding the side exit;
    // it needs all four in cycles 0-1 to issue at cycle 2.
    OpId ops[4];
    for (int i = 0; i < 4; ++i)
        ops[i] = b.addOp(OpClass::IntAlu, 1, "i" + std::to_string(i));
    OpId br4 = b.addBranch(sideProb, "side");
    for (OpId v : ops)
        b.addEdge(v, br4);

    // Block 2: a three-op chain; the final exit has 8 predecessors,
    // so it is resource bound to cycle 4, reachable only when the
    // chain starts no later than cycle 1 -- which conflicts with the
    // side exit's need for cycles 0-1.
    OpId c0 = b.addOp(OpClass::IntAlu, 1, "c0");
    OpId c1 = b.addOp(OpClass::IntAlu, 1, "c1");
    OpId c2 = b.addOp(OpClass::IntAlu, 1, "c2");
    OpId br8 = b.addBranch(1.0 - sideProb, "final");
    b.addEdge(c0, c1);
    b.addEdge(c1, c2);
    b.addEdge(c2, br8);
    return b.build();
}

Superblock
paperFigure6()
{
    SuperblockBuilder b("paper.fig6");
    OpId o0 = b.addOp(OpClass::IntAlu, 1, "a0");
    OpId o1 = b.addOp(OpClass::IntAlu, 1, "a1");
    OpId o2 = b.addOp(OpClass::IntAlu, 1, "b0");
    OpId o3 = b.addOp(OpClass::IntAlu, 1, "b1");
    OpId o4 = b.addOp(OpClass::IntAlu, 1, "b2");
    OpId o5 = b.addOp(OpClass::IntAlu, 1, "b3");
    OpId o6 = b.addOp(OpClass::IntAlu, 1, "m");
    OpId o7 = b.addOp(OpClass::IntAlu, 1, "n");
    OpId br8 = b.addBranch(1.0, "exit");
    // 0 delays 2: both belong to the deadline-1 set {0,2,3,4,5}.
    b.addEdge(o0, o2);
    b.addEdge(o2, o6);
    b.addEdge(o3, o6);
    b.addEdge(o4, o6);
    b.addEdge(o5, o6);
    b.addEdge(o6, o7);
    b.addEdge(o7, br8);
    b.addEdge(o1, br8);
    return b.build();
}

} // namespace balance
