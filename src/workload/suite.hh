/**
 * @file
 * The synthetic SPECint95-like benchmark suite: eight programs with
 * distinct shape profiles and superblock counts summing to the
 * paper's 6615 superblocks. Fully deterministic for a given suite
 * seed, so every bench and test sees the same population.
 */

#ifndef BALANCE_WORKLOAD_SUITE_HH
#define BALANCE_WORKLOAD_SUITE_HH

#include <string>
#include <vector>

#include "workload/generator.hh"

namespace balance
{

/** One synthetic program: a name and its superblock population. */
struct BenchmarkProgram
{
    std::string name;
    std::vector<Superblock> superblocks;
};

/** Per-program recipe (name, count, shape). */
struct ProgramSpec
{
    std::string name;
    int superblockCount = 0;
    GeneratorParams params;
};

/** Options controlling suite construction. */
struct SuiteOptions
{
    /** Master seed; programs derive child seeds from it. */
    std::uint64_t seed = 0x5eedbeefcafe1995ULL;
    /**
     * Scale factor on per-program superblock counts in (0, 1]. The
     * benches expose this so a quick run can use a sampled suite;
     * 1.0 reproduces the full 6615-superblock population.
     */
    double scale = 1.0;
};

/** @return the eight SPECint95-inspired program recipes (6615 SBs). */
std::vector<ProgramSpec> specInt95Specs();

/** Build one program's population. */
BenchmarkProgram buildProgram(const ProgramSpec &spec,
                              std::uint64_t suiteSeed, double scale);

/** Build the whole suite. */
std::vector<BenchmarkProgram> buildSuite(const SuiteOptions &opts = {});

/** @return the total superblock count of a suite. */
int suiteSize(const std::vector<BenchmarkProgram> &suite);

} // namespace balance

#endif // BALANCE_WORKLOAD_SUITE_HH
