#include "workload/sb_io.hh"

#include <fstream>
#include <memory>
#include <sstream>

#include "graph/builder.hh"
#include "support/diagnostics.hh"
#include "support/strings.hh"

namespace balance
{

std::string
writeSuperblock(const Superblock &sb)
{
    std::ostringstream oss;
    // Round-trip exactness for probabilities and frequencies.
    oss.precision(17);
    oss << "superblock " << sb.name() << "\n";
    oss << "freq " << sb.execFrequency() << "\n";
    for (const Operation &o : sb.ops()) {
        if (o.isBranch())
            oss << "branch " << o.id << " " << o.exitProb << " "
                << o.latency;
        else
            oss << "op " << o.id << " " << opClassName(o.cls) << " "
                << o.latency;
        if (!o.name.empty())
            oss << " " << o.name;
        oss << "\n";
    }
    for (const Operation &o : sb.ops()) {
        for (const Adjacent &e : sb.succs(o.id))
            oss << "edge " << o.id << " " << e.op << " " << e.latency
                << "\n";
    }
    oss << "end\n";
    return oss.str();
}

void
writeSuperblocks(std::ostream &os, const std::vector<Superblock> &sbs)
{
    for (const Superblock &sb : sbs)
        os << writeSuperblock(sb);
}

namespace
{

/**
 * Parser state for one superblock body. Every check reports through
 * the error string instead of bsFatal/bsAssert so untrusted input
 * (the service daemon's request bodies) can never abort the process;
 * the checks mirror — and therefore pre-empt — every builder /
 * validate() assertion reachable from text input.
 */
class SbParser
{
  public:
    explicit SbParser(std::string &error) : error(error) {}

    bool
    begin(const std::string &name, int lineNo)
    {
        if (builder)
            return fail(lineNo, "nested 'superblock' directive");
        builder = std::make_unique<SuperblockBuilder>(name);
        nextId = 0;
        branchCount = 0;
        probSum = 0.0;
        return true;
    }

    bool active() const { return builder != nullptr; }

    bool
    freq(double f, int lineNo)
    {
        if (!require(lineNo))
            return false;
        if (!(f >= 0.0))
            return fail(lineNo, "negative execution frequency");
        builder->setFrequency(f);
        return true;
    }

    bool
    op(long long id, const std::string &clsName, long long latency,
       std::string name, int lineNo)
    {
        if (!require(lineNo))
            return false;
        if (id != nextId) {
            return fail(lineNo, "operation id " + std::to_string(id) +
                                    " out of order (expected " +
                                    std::to_string(nextId) + ")");
        }
        OpClass cls;
        if (!parseOpClass(clsName, cls) || cls == OpClass::Branch)
            return fail(lineNo, "bad op class '" + clsName + "'");
        if (latency < 0 || latency > maxLatency)
            return fail(lineNo, "op latency out of range");
        builder->addOp(cls, int(latency), std::move(name));
        ++nextId;
        return true;
    }

    bool
    branch(long long id, double prob, long long latency,
           std::string name, int lineNo)
    {
        if (!require(lineNo))
            return false;
        if (id != nextId) {
            return fail(lineNo, "branch id " + std::to_string(id) +
                                    " out of order (expected " +
                                    std::to_string(nextId) + ")");
        }
        if (!(prob >= 0.0 && prob <= 1.0))
            return fail(lineNo, "branch probability outside [0, 1]");
        if (latency < 0 || latency > maxLatency)
            return fail(lineNo, "branch latency out of range");
        probSum += prob;
        if (probSum > 1.0 + 1e-6)
            return fail(lineNo, "exit probabilities sum over 1");
        builder->addBranch(prob, std::move(name), int(latency));
        ++nextId;
        ++branchCount;
        return true;
    }

    bool
    edge(long long src, long long dst, long long latency, int lineNo)
    {
        if (!require(lineNo))
            return false;
        if (src < 0 || src >= nextId || dst < 0 || dst >= nextId ||
            src >= dst) {
            return fail(lineNo, "bad edge " + std::to_string(src) +
                                    " -> " + std::to_string(dst));
        }
        if (latency < 0 || latency > maxLatency)
            return fail(lineNo, "edge latency out of range");
        builder->addEdge(OpId(src), OpId(dst), int(latency));
        return true;
    }

    bool
    end(std::vector<Superblock> &out, int lineNo)
    {
        if (!require(lineNo))
            return false;
        if (nextId == 0)
            return fail(lineNo, "superblock has no operations");
        if (branchCount == 0)
            return fail(lineNo, "superblock needs at least one exit");
        out.push_back(builder->build());
        builder.reset();
        return true;
    }

  private:
    bool
    require(int lineNo)
    {
        if (!builder)
            return fail(lineNo, "directive outside a superblock block");
        return true;
    }

    bool
    fail(int lineNo, const std::string &what)
    {
        error = "line " + std::to_string(lineNo) + ": " + what;
        return false;
    }

    // Latencies feed int arithmetic in the bound/schedule kernels;
    // cap them well below INT_MAX so sums cannot overflow.
    static constexpr long long maxLatency = 1 << 24;

    std::string &error;
    std::unique_ptr<SuperblockBuilder> builder;
    long long nextId = 0;
    long long branchCount = 0;
    double probSum = 0.0;
};

} // namespace

bool
tryReadSuperblocks(std::istream &is, std::vector<Superblock> &out,
                   std::string *errorOut)
{
    std::string error;
    SbParser parser(error);
    std::string line;
    int lineNo = 0;
    bool ok = true;

    while (ok && std::getline(is, line)) {
        ++lineNo;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::vector<std::string> tok = splitWhitespace(line);
        if (tok.empty())
            continue;

        const std::string &kind = tok[0];
        auto wantArgs = [&](std::size_t minArgs) {
            if (tok.size() >= minArgs + 1)
                return true;
            error = "line " + std::to_string(lineNo) + ": '" + kind +
                    "' needs at least " + std::to_string(minArgs) +
                    " arguments";
            return false;
        };
        auto badNumbers = [&] {
            error = "line " + std::to_string(lineNo) + ": bad '" +
                    kind + "' numbers";
            return false;
        };
        long long a = 0;
        long long b = 0;
        long long c = 0;
        double d = 0.0;

        if (kind == "superblock") {
            ok = wantArgs(1) && parser.begin(tok[1], lineNo);
        } else if (kind == "freq") {
            ok = wantArgs(1) &&
                 (parseDouble(tok[1], d) ? parser.freq(d, lineNo)
                                         : badNumbers());
        } else if (kind == "op") {
            ok = wantArgs(3) &&
                 ((parseInt(tok[1], a) && parseInt(tok[3], b))
                      ? parser.op(a, tok[2], b,
                                  tok.size() > 4 ? tok[4] : "", lineNo)
                      : badNumbers());
        } else if (kind == "branch") {
            ok = wantArgs(3) &&
                 ((parseInt(tok[1], a) && parseDouble(tok[2], d) &&
                   parseInt(tok[3], b))
                      ? parser.branch(a, d, b,
                                      tok.size() > 4 ? tok[4] : "",
                                      lineNo)
                      : badNumbers());
        } else if (kind == "edge") {
            ok = wantArgs(3) &&
                 ((parseInt(tok[1], a) && parseInt(tok[2], b) &&
                   parseInt(tok[3], c))
                      ? parser.edge(a, b, c, lineNo)
                      : badNumbers());
        } else if (kind == "end") {
            ok = parser.end(out, lineNo);
        } else {
            error = "line " + std::to_string(lineNo) +
                    ": unknown directive '" + kind + "'";
            ok = false;
        }
    }
    if (ok && parser.active()) {
        error = "unexpected end of input: missing 'end'";
        ok = false;
    }
    if (!ok && errorOut)
        *errorOut = error;
    return ok;
}

bool
tryParseSuperblock(const std::string &text, Superblock *out,
                   std::string *errorOut)
{
    std::istringstream iss(text);
    std::vector<Superblock> sbs;
    if (!tryReadSuperblocks(iss, sbs, errorOut))
        return false;
    if (sbs.size() != 1) {
        if (errorOut)
            *errorOut = "expected exactly one superblock, found " +
                        std::to_string(sbs.size());
        return false;
    }
    if (out)
        *out = std::move(sbs.front());
    return true;
}

std::vector<Superblock>
readSuperblocks(std::istream &is)
{
    std::vector<Superblock> out;
    std::string error;
    if (!tryReadSuperblocks(is, out, &error))
        bsFatal(error);
    return out;
}

Superblock
parseSuperblock(const std::string &text)
{
    Superblock sb;
    std::string error;
    if (!tryParseSuperblock(text, &sb, &error))
        bsFatal(error);
    return sb;
}

std::vector<Superblock>
loadSuperblockFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        bsFatal("cannot open '", path, "' for reading");
    return readSuperblocks(in);
}

void
saveSuperblockFile(const std::string &path,
                   const std::vector<Superblock> &sbs)
{
    std::ofstream outFile(path);
    if (!outFile)
        bsFatal("cannot open '", path, "' for writing");
    writeSuperblocks(outFile, sbs);
}

} // namespace balance
