#include "workload/sb_io.hh"

#include <fstream>
#include <memory>
#include <sstream>

#include "graph/builder.hh"
#include "support/diagnostics.hh"
#include "support/strings.hh"

namespace balance
{

std::string
writeSuperblock(const Superblock &sb)
{
    std::ostringstream oss;
    // Round-trip exactness for probabilities and frequencies.
    oss.precision(17);
    oss << "superblock " << sb.name() << "\n";
    oss << "freq " << sb.execFrequency() << "\n";
    for (const Operation &o : sb.ops()) {
        if (o.isBranch())
            oss << "branch " << o.id << " " << o.exitProb << " "
                << o.latency;
        else
            oss << "op " << o.id << " " << opClassName(o.cls) << " "
                << o.latency;
        if (!o.name.empty())
            oss << " " << o.name;
        oss << "\n";
    }
    for (const Operation &o : sb.ops()) {
        for (const Adjacent &e : sb.succs(o.id))
            oss << "edge " << o.id << " " << e.op << " " << e.latency
                << "\n";
    }
    oss << "end\n";
    return oss.str();
}

void
writeSuperblocks(std::ostream &os, const std::vector<Superblock> &sbs)
{
    for (const Superblock &sb : sbs)
        os << writeSuperblock(sb);
}

namespace
{

/** Parser state for one superblock body. */
class SbParser
{
  public:
    void
    begin(const std::string &name, int lineNo)
    {
        if (builder)
            bsFatal("line ", lineNo, ": nested 'superblock' directive");
        builder = std::make_unique<SuperblockBuilder>(name);
        nextId = 0;
    }

    bool active() const { return builder != nullptr; }

    void
    freq(double f, int lineNo)
    {
        require(lineNo);
        builder->setFrequency(f);
    }

    void
    op(long long id, const std::string &clsName, long long latency,
       std::string name, int lineNo)
    {
        require(lineNo);
        if (id != nextId)
            bsFatal("line ", lineNo, ": operation id ", id,
                    " out of order (expected ", nextId, ")");
        OpClass cls;
        if (!parseOpClass(clsName, cls) || cls == OpClass::Branch)
            bsFatal("line ", lineNo, ": bad op class '", clsName, "'");
        builder->addOp(cls, int(latency), std::move(name));
        ++nextId;
    }

    void
    branch(long long id, double prob, long long latency,
           std::string name, int lineNo)
    {
        require(lineNo);
        if (id != nextId)
            bsFatal("line ", lineNo, ": branch id ", id,
                    " out of order (expected ", nextId, ")");
        builder->addBranch(prob, std::move(name), int(latency));
        ++nextId;
    }

    void
    edge(long long src, long long dst, long long latency, int lineNo)
    {
        require(lineNo);
        if (src < 0 || src >= nextId || dst < 0 || dst >= nextId ||
            src >= dst) {
            bsFatal("line ", lineNo, ": bad edge ", src, " -> ", dst);
        }
        builder->addEdge(OpId(src), OpId(dst), int(latency));
    }

    Superblock
    end(int lineNo)
    {
        require(lineNo);
        Superblock sb = builder->build();
        builder.reset();
        return sb;
    }

  private:
    void
    require(int lineNo) const
    {
        if (!builder)
            bsFatal("line ", lineNo,
                    ": directive outside a superblock block");
    }

    std::unique_ptr<SuperblockBuilder> builder;
    long long nextId = 0;
};

} // namespace

std::vector<Superblock>
readSuperblocks(std::istream &is)
{
    std::vector<Superblock> out;
    SbParser parser;
    std::string line;
    int lineNo = 0;

    while (std::getline(is, line)) {
        ++lineNo;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::vector<std::string> tok = splitWhitespace(line);
        if (tok.empty())
            continue;

        const std::string &kind = tok[0];
        auto wantArgs = [&](std::size_t minArgs) {
            if (tok.size() < minArgs + 1)
                bsFatal("line ", lineNo, ": '", kind, "' needs at least ",
                        minArgs, " arguments");
        };
        long long a = 0;
        long long b = 0;
        long long c = 0;
        double d = 0.0;

        if (kind == "superblock") {
            wantArgs(1);
            parser.begin(tok[1], lineNo);
        } else if (kind == "freq") {
            wantArgs(1);
            if (!parseDouble(tok[1], d))
                bsFatal("line ", lineNo, ": bad frequency");
            parser.freq(d, lineNo);
        } else if (kind == "op") {
            wantArgs(3);
            if (!parseInt(tok[1], a) || !parseInt(tok[3], b))
                bsFatal("line ", lineNo, ": bad op numbers");
            parser.op(a, tok[2], b, tok.size() > 4 ? tok[4] : "",
                      lineNo);
        } else if (kind == "branch") {
            wantArgs(3);
            if (!parseInt(tok[1], a) || !parseDouble(tok[2], d) ||
                !parseInt(tok[3], b)) {
                bsFatal("line ", lineNo, ": bad branch numbers");
            }
            parser.branch(a, d, b, tok.size() > 4 ? tok[4] : "",
                          lineNo);
        } else if (kind == "edge") {
            wantArgs(3);
            if (!parseInt(tok[1], a) || !parseInt(tok[2], b) ||
                !parseInt(tok[3], c)) {
                bsFatal("line ", lineNo, ": bad edge numbers");
            }
            parser.edge(a, b, c, lineNo);
        } else if (kind == "end") {
            out.push_back(parser.end(lineNo));
        } else {
            bsFatal("line ", lineNo, ": unknown directive '", kind, "'");
        }
    }
    if (parser.active())
        bsFatal("unexpected end of input: missing 'end'");
    return out;
}

Superblock
parseSuperblock(const std::string &text)
{
    std::istringstream iss(text);
    std::vector<Superblock> sbs = readSuperblocks(iss);
    if (sbs.size() != 1)
        bsFatal("expected exactly one superblock, found ", sbs.size());
    return std::move(sbs.front());
}

std::vector<Superblock>
loadSuperblockFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        bsFatal("cannot open '", path, "' for reading");
    return readSuperblocks(in);
}

void
saveSuperblockFile(const std::string &path,
                   const std::vector<Superblock> &sbs)
{
    std::ofstream outFile(path);
    if (!outFile)
        bsFatal("cannot open '", path, "' for writing");
    writeSuperblocks(outFile, sbs);
}

} // namespace balance
