#include "workload/generator.hh"

#include <algorithm>
#include <cmath>

#include "graph/builder.hh"
#include "support/diagnostics.hh"

namespace balance
{

namespace
{

/** Draw an operation class and latency from the mix. */
std::pair<OpClass, int>
drawOp(Rng &rng, const GeneratorParams &p)
{
    double u = rng.uniformDouble();
    if (u < p.floatFraction) {
        double f = rng.uniformDouble();
        if (f < p.floatDivFraction)
            return {OpClass::FloatAlu, Latencies::floatDivide};
        if (f < p.floatDivFraction + p.floatMulFraction)
            return {OpClass::FloatAlu, Latencies::floatMultiply};
        return {OpClass::FloatAlu, Latencies::unit};
    }
    if (u < p.floatFraction + p.memFraction) {
        bool load = rng.bernoulli(p.loadFraction);
        return {OpClass::Memory,
                load ? Latencies::load : Latencies::unit};
    }
    return {OpClass::IntAlu, Latencies::unit};
}

} // namespace

Superblock
generateSuperblock(Rng &rng, const GeneratorParams &params,
                   std::string name)
{
    // Number of blocks: geometric tail, occasionally giant.
    int blocks;
    bool giant = false;
    if (params.giantProb > 0.0 && rng.bernoulli(params.giantProb)) {
        blocks = int(rng.uniformInt(params.giantMinBlocks,
                                    params.giantMaxBlocks));
        giant = true;
    } else {
        blocks = 1 + int(rng.geometric(params.blockGeoP));
    }
    blocks = std::clamp(blocks, 1, params.maxBlocks);
    double opsMu = giant ? params.giantOpsPerBlockMu
                         : params.opsPerBlockMu;

    // Ops per block, capped so the superblock stays within limits.
    std::vector<int> blockSize(std::size_t(blocks), 0);
    int totalOps = 0;
    for (int j = 0; j < blocks; ++j) {
        int n = std::max(0, int(std::llround(rng.logNormal(
                                opsMu, params.opsPerBlockSigma))));
        // +1 accounts for the block's branch.
        if (totalOps + n + 1 > params.maxOps)
            n = std::max(0, params.maxOps - totalOps - 1);
        blockSize[std::size_t(j)] = n;
        totalOps += n + 1;
        if (totalOps >= params.maxOps) {
            blocks = j + 1;
            blockSize.resize(std::size_t(blocks));
            break;
        }
    }

    // Side-exit probabilities: a bounded total mass split by
    // exponential proportions; the final exit takes the rest.
    std::vector<double> exitProb(std::size_t(blocks), 0.0);
    if (blocks == 1) {
        exitProb[0] = 1.0;
    } else {
        double total = rng.uniformDouble(params.sideExitMin,
                                         params.sideExitMax);
        std::vector<double> share(std::size_t(blocks) - 1);
        double sum = 0.0;
        for (auto &s : share) {
            s = -std::log(std::max(rng.uniformDouble(), 0x1.0p-53));
            sum += s;
        }
        for (int j = 0; j + 1 < blocks; ++j)
            exitProb[std::size_t(j)] = total * share[std::size_t(j)] / sum;
        exitProb[std::size_t(blocks) - 1] = 1.0 - total;
    }

    SuperblockBuilder b(std::move(name));
    b.setFrequency(
        std::max(1.0, rng.logNormal(params.freqMu, params.freqSigma)));

    std::vector<OpId> dataOps; // producers eligible as predecessors

    for (int j = 0; j < blocks; ++j) {
        std::vector<OpId> thisBlock;
        for (int k = 0; k < blockSize[std::size_t(j)]; ++k) {
            auto [cls, latency] = drawOp(rng, params);
            OpId v = b.addOp(cls, latency);

            // Data predecessors: a geometric count, biased toward
            // recent producers; some cross into earlier blocks.
            int nPreds = int(rng.geometric(
                1.0 / (1.0 + params.depMean)));
            for (int e = 0; e < nPreds && !dataOps.empty(); ++e) {
                std::size_t pick;
                if (j > 0 && rng.bernoulli(params.crossBlockProb)) {
                    pick = std::size_t(
                        rng.uniformInt(0, int(dataOps.size()) - 1));
                } else {
                    // Recency bias: quadratic toward the tail.
                    double u = rng.uniformDouble();
                    pick = std::size_t(
                        double(dataOps.size()) * (1.0 - u * u));
                    pick = std::min(pick, dataOps.size() - 1);
                }
                if (dataOps[pick] != v)
                    b.addEdge(dataOps[pick], v);
            }

            dataOps.push_back(v);
            thisBlock.push_back(v);
        }

        OpId br = b.addBranch(exitProb[std::size_t(j)]);
        // The branch condition consumes one or two recent values.
        if (!thisBlock.empty()) {
            b.addEdge(thisBlock.back(), br);
            if (thisBlock.size() > 1 && rng.bernoulli(0.5))
                b.addEdge(thisBlock[thisBlock.size() - 2], br);
        }
        // No operation may sink below its own block's exit.
        for (OpId v : thisBlock)
            b.addEdge(v, br);
    }

    return b.build(/*anchorLooseOpsToLastExit=*/true);
}

} // namespace balance
