/**
 * @file
 * Textual .sb interchange format for superblocks, so examples and
 * external tools can persist and inspect workloads.
 *
 * Grammar (one directive per line; '#' starts a comment):
 *
 *   superblock <name>
 *   freq <double>
 *   op <id> <class> <latency> [<name>]
 *   branch <id> <exitProb> <latency> [<name>]
 *   edge <src> <dst> <latency>
 *   end
 *
 * Operations must appear in id order starting at 0 (program order);
 * classes are the opClassName() mnemonics (int, mem, flt, br is
 * implied by the branch directive). Control edges between
 * consecutive branches may be omitted; the loader reinserts them.
 */

#ifndef BALANCE_WORKLOAD_SB_IO_HH
#define BALANCE_WORKLOAD_SB_IO_HH

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "graph/superblock.hh"

namespace balance
{

/** Serialize one superblock. */
std::string writeSuperblock(const Superblock &sb);

/** Serialize many superblocks back to back. */
void writeSuperblocks(std::ostream &os,
                      const std::vector<Superblock> &sbs);

/**
 * Parse superblocks from a stream until EOF; fatal (user error) on
 * malformed input.
 */
std::vector<Superblock> readSuperblocks(std::istream &is);

/** Parse exactly one superblock from a string. */
Superblock parseSuperblock(const std::string &text);

/**
 * Checked variant of readSuperblocks for untrusted input (the
 * service daemon): never aborts. Appends parsed superblocks to
 * @p out until the stream ends or a parse error.
 * @return true on success; false with a position-bearing message in
 *         @p error (may be null) otherwise.
 */
bool tryReadSuperblocks(std::istream &is, std::vector<Superblock> &out,
                        std::string *error);

/**
 * Checked variant of parseSuperblock: parse exactly one superblock
 * into @p out (may be null to validate only).
 * @return true on success; false with a message in @p error.
 */
bool tryParseSuperblock(const std::string &text, Superblock *out,
                        std::string *error);

/** Load superblocks from a file; fatal when unreadable. */
std::vector<Superblock> loadSuperblockFile(const std::string &path);

/** Save superblocks to a file; fatal when unwritable. */
void saveSuperblockFile(const std::string &path,
                        const std::vector<Superblock> &sbs);

} // namespace balance

#endif // BALANCE_WORKLOAD_SB_IO_HH
