/**
 * @file
 * Synthetic superblock generation. Stands in for the paper's
 * IMPACT -> Elcor -> LEGO pipeline over SPECint95 (see DESIGN.md,
 * substitutions): produces dependence DAGs whose shape statistics
 * (size, branch count, operation mix, dependence density, exit
 * probabilities, execution frequencies) match the envelope the
 * paper reports, while exercising exactly the same scheduler and
 * bound code paths.
 *
 * Structural rules mirror superblock semantics:
 *  - operations may be hoisted above earlier exits (speculation),
 *    so cross-block dependences exist only where data flows;
 *  - operations may NOT sink below their own block's exit, so every
 *    operation has a dependence edge to its block's branch;
 *  - consecutive exits are chained by control edges (builder).
 */

#ifndef BALANCE_WORKLOAD_GENERATOR_HH
#define BALANCE_WORKLOAD_GENERATOR_HH

#include <string>

#include "graph/superblock.hh"
#include "support/rng.hh"

namespace balance
{

/** Shape parameters for one synthetic program's superblocks. */
struct GeneratorParams
{
    /** Geometric parameter for the number of blocks (mean ~1/p). */
    double blockGeoP = 0.40;
    /** Hard cap on blocks (the paper's max is 200 branches). */
    int maxBlocks = 200;
    /** Lognormal ops-per-block: exp(N(mu, sigma)). */
    double opsPerBlockMu = 1.6;
    double opsPerBlockSigma = 0.7;
    /** Hard cap on total operations (the paper's max is 607). */
    int maxOps = 607;

    /** Probability that a rare "giant" superblock is drawn. */
    double giantProb = 0.0;
    /** Giant block-count range (uniform). */
    int giantMinBlocks = 40;
    int giantMaxBlocks = 200;
    /**
     * Ops-per-block lognormal mu for giant draws: giant regions use
     * short blocks so a 200-branch superblock fits the 607-op cap
     * (matching the paper's extremes).
     */
    double giantOpsPerBlockMu = 0.7;

    /** Operation class mix (remainder is integer ALU). */
    double memFraction = 0.28;
    double floatFraction = 0.02;
    /** Fraction of memory operations that are loads (latency 2). */
    double loadFraction = 0.7;
    /** Float mix: multiply (latency 3) and divide (latency 9). */
    double floatMulFraction = 0.35;
    double floatDivFraction = 0.05;

    /** Mean extra data predecessors per operation (>= 0). */
    double depMean = 1.4;
    /** Probability an edge crosses into an earlier block. */
    double crossBlockProb = 0.35;

    /** Total side-exit probability range (uniform). */
    double sideExitMin = 0.05;
    double sideExitMax = 0.55;

    /** Lognormal execution frequency: exp(N(mu, sigma)). */
    double freqMu = 3.0;
    double freqSigma = 1.5;
};

/**
 * Generate one superblock.
 *
 * @param rng Deterministic stream; caller owns the seeding policy.
 * @param params Shape parameters.
 * @param name Display name for the superblock.
 */
Superblock generateSuperblock(Rng &rng, const GeneratorParams &params,
                              std::string name);

} // namespace balance

#endif // BALANCE_WORKLOAD_GENERATOR_HH
