/**
 * @file
 * The scheduling-as-a-service daemon (docs/SERVICE.md): bind the
 * ServiceServer, print the bound address, and run until SIGINT or
 * SIGTERM. Shutdown is deliberately boring — stop accepting, join
 * the handler threads, flush telemetry, exit 0 — so orchestrators
 * can treat any other exit status as a crash.
 *
 *   ./balance_serviced [--port p] [--bind addr] [--threads n]
 *                      [--handler-threads n] [--max-queue n]
 *                      [--max-inflight n] [--max-body-bytes n]
 *                      [--recv-timeout-ms n] [--max-batch n]
 *                      [--cache-cap n] [--metrics-out f] ...
 *
 * The daemon owns signal handling (TelemetryOptions::manageSignals
 * is off): the main thread blocks SIGINT/SIGTERM before any thread
 * starts and sigwait()s, so the flush path never runs inside a
 * signal handler.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "eval/bench_options.hh"
#include "service/server.hh"
#include "support/telemetry.hh"

using namespace balance;

namespace
{

struct Options
{
    ServiceServerOptions server;
    TelemetryOptions telemetry;
};

[[noreturn]] void
usage(int code)
{
    std::cout
        << "balance_serviced: scheduling-as-a-service daemon\n"
        << "  --port <p>            TCP port (default 0 = ephemeral,\n"
        << "                        printed on stdout)\n"
        << "  --bind <addr>         bind address (default 127.0.0.1)\n"
        << "  --threads <n>         batch fan-out concurrency cap\n"
        << "                        (default 0 = hardware)\n"
        << "  --handler-threads <n> connection handler pool "
           "(default 4)\n"
        << "  --max-queue <n>       pending connections before 503\n"
        << "                        shedding (default 64)\n"
        << "  --max-inflight <n>    request bodies under evaluation\n"
        << "                        before 429 shedding (default 8)\n"
        << "  --max-body-bytes <n>  request body limit (default 1 MiB)\n"
        << "  --recv-timeout-ms <n> per-connection receive deadline\n"
        << "                        (default 5000)\n"
        << "  --max-batch <n>       requests per batch body "
           "(default 64)\n"
        << "  --cache-cap <n>       GraphContext cache entries\n"
        << "                        (default 256)\n"
        << telemetryUsage();
    std::exit(code);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--port") {
            o.server.port = int(parseIntOption("balance_serviced", arg,
                                               next(), 0, 65535));
        } else if (arg == "--bind") {
            o.server.bindAddress = next();
        } else if (arg == "--threads") {
            o.server.threads = int(parseIntOption(
                "balance_serviced", arg, next(), 0, 1024));
        } else if (arg == "--handler-threads") {
            o.server.handlerThreads = int(parseIntOption(
                "balance_serviced", arg, next(), 1, 256));
        } else if (arg == "--max-queue") {
            o.server.maxQueue = int(parseIntOption(
                "balance_serviced", arg, next(), 1, 1 << 20));
        } else if (arg == "--max-inflight") {
            o.server.maxInflight = int(parseIntOption(
                "balance_serviced", arg, next(), 1, 1 << 20));
        } else if (arg == "--max-body-bytes") {
            o.server.maxBodyBytes = std::size_t(parseIntOption(
                "balance_serviced", arg, next(), 1, 1 << 30));
        } else if (arg == "--recv-timeout-ms") {
            o.server.recvTimeoutMs = int(parseIntOption(
                "balance_serviced", arg, next(), 0, 3600 * 1000));
        } else if (arg == "--max-batch") {
            o.server.protocol.maxBatch = std::size_t(parseIntOption(
                "balance_serviced", arg, next(), 1, 1 << 16));
        } else if (arg == "--cache-cap") {
            o.server.cacheCapacity = std::size_t(parseIntOption(
                "balance_serviced", arg, next(), 1, 1 << 20));
        } else if (arg == "--help") {
            usage(0);
        } else if (parseTelemetryFlag(arg, next, o.telemetry)) {
            // handled
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage(2);
        }
    }
    // The daemon owns SIGINT/SIGTERM (see the file comment).
    o.telemetry.manageSignals = false;
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);

    // Block the shutdown signals before any thread exists so every
    // thread inherits the mask and sigwait below is the only
    // consumer. An ignored signal would be discarded before sigwait
    // can see it; restore the default disposition first.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    struct sigaction dfl = {};
    dfl.sa_handler = SIG_DFL;
    ::sigaction(SIGINT, &dfl, nullptr);
    ::sigaction(SIGTERM, &dfl, nullptr);

    initTelemetry(o.telemetry);

    ServiceServer server;
    if (!server.start(o.server))
        return 1;

    int sig = 0;
    if (sigwait(&set, &sig) != 0)
        return 1;
    std::cerr << "balance_serviced: caught "
              << (sig == SIGINT ? "SIGINT" : "SIGTERM")
              << "; shutting down\n";
    server.stop();
    TelemetryFlusher::flushAll();
    return 0;
}
