/**
 * @file
 * Reproduces Table 1: quality of the CP / Hu / RJ / LC / Pairwise /
 * Triplewise lower bounds relative to the per-superblock tightest
 * bound, for each of the six machine configurations.
 *
 *   ./table1_bounds [--scale f] [--seed s] [--config M]...
 */

#include <iostream>

#include "eval/bench_options.hh"
#include "eval/bounds_eval.hh"
#include "support/table.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, /*scale=*/0.25);
    auto suite = opts.buildSuitePopulation();
    std::cout << "Table 1: bound quality relative to the tightest "
                 "lower bound\n"
              << "suite: " << suiteSize(suite) << " superblocks (scale "
              << opts.suite.scale << ")\n\n";

    for (const MachineModel &machine : opts.machines) {
        auto rows = evaluateBoundQuality(suite, machine, {},
                                        opts.threads);
        TextTable table;
        table.setHeader({"metric", "CP", "Hu", "RJ", "LC", "PW", "TW"});
        std::vector<std::string> avg = {"Avg gap"};
        std::vector<std::string> max = {"Max gap"};
        std::vector<std::string> num = {"Num below"};
        for (const auto &r : rows) {
            avg.push_back(fmtPercent(r.avgGapPercent));
            max.push_back(fmtPercent(r.maxGapPercent));
            num.push_back(fmtPercent(r.belowPercent));
        }
        table.addRow(avg);
        table.addRow(max);
        table.addRow(num);
        std::cout << machine.name() << " -- " << machine.describe()
                  << "\n"
                  << table.render() << "\n";
    }

    std::cout
        << "expected shape (paper): CP much weaker than the resource\n"
        << "bounds; RJ ~ LC with large worst-case gaps; PW small\n"
        << "worst-case gaps; TW near zero and below the tightest for\n"
        << "under ~1% of superblocks.\n";
    return 0;
}
