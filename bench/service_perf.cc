/**
 * @file
 * Load generator and determinism gate for the scheduling service
 * (docs/SERVICE.md). By default it self-hosts a ServiceServer on an
 * ephemeral loopback port, drives it with concurrent HTTP clients
 * POSTing suite-derived superblocks to /schedule, and emits
 * machine-readable results (BENCH_service.json from the repo root):
 * sustained superblocks/sec plus the p50/p90/p99 request latency the
 * clients observed.
 *
 *   ./service_perf [--scale f] [--seed s] [--clients n] [--repeat n]
 *                  [--batch n] [--threads n] [--connect host:port]
 *                  [--out path] [--smoke]
 *
 * Two determinism checks run in every mode and fail the bench on
 * violation:
 *  - replaying a request against a fresh server yields a response
 *    body bitwise identical to the first answer, with the cache
 *    disposition (miss then hit) visible only in the X-Balance-Cache
 *    header;
 *  - a serial engine (threads=1) and a hardware-concurrency engine
 *    render bitwise-identical batch responses.
 *
 * --connect skips self-hosting and aims the clients at an already
 * running balance_serviced (the cache-replay check then only asserts
 * body identity, since the remote cache state is unknown).
 */

#include <arpa/inet.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "eval/bench_options.hh"
#include "service/engine.hh"
#include "service/server.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/telemetry.hh"
#include "workload/sb_io.hh"
#include "workload/suite.hh"

using namespace balance;

namespace
{

struct Options
{
    SuiteOptions suite;
    int clients = 4;
    int repeat = 2;
    std::size_t batch = 8;
    int threads = 0;
    std::string connect;
    std::string outPath = "BENCH_service.json";
    bool smoke = false;
    TelemetryOptions telemetry;
};

[[noreturn]] void
usage(int code)
{
    std::cout
        << "service_perf: scheduling-service load generator\n"
        << "  --scale <0..1]     suite fraction (default 0.01)\n"
        << "  --seed <u64>       suite master seed\n"
        << "  --clients <n>      concurrent client threads (default 4)\n"
        << "  --repeat <n>       passes over the request set "
           "(default 2)\n"
        << "  --batch <n>        superblocks per /schedule body\n"
        << "                     (default 8; 1 = single-request form)\n"
        << "  --threads <n>      server batch fan-out cap (default 0 =\n"
        << "                     hardware)\n"
        << "  --connect <h:p>    drive an external daemon instead of\n"
        << "                     self-hosting\n"
        << "  --out <path>       JSON output (default "
           "BENCH_service.json)\n"
        << "  --smoke            tiny suite; same checks\n"
        << telemetryUsage();
    std::exit(code);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    o.suite.scale = 0.01;
    bool scaleSet = false;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--scale") {
            std::string text = next();
            double v = parseDoubleOption("service_perf", arg, text, 2);
            if (v <= 0.0 || v > 1.0)
                optionError("service_perf", arg, text,
                            "number in (0, 1]", 2);
            o.suite.scale = v;
            scaleSet = true;
        } else if (arg == "--seed") {
            o.suite.seed = parseUint64Option("service_perf", arg,
                                             next(), 2);
        } else if (arg == "--clients") {
            o.clients = int(parseIntOption("service_perf", arg, next(),
                                           1, 256));
        } else if (arg == "--repeat") {
            o.repeat = int(parseIntOption("service_perf", arg, next(),
                                          1, 1 << 20));
        } else if (arg == "--batch") {
            o.batch = std::size_t(parseIntOption("service_perf", arg,
                                                 next(), 1, 1 << 16));
        } else if (arg == "--threads") {
            o.threads = int(parseIntOption("service_perf", arg, next(),
                                           0, 1024));
        } else if (arg == "--connect") {
            o.connect = next();
        } else if (arg == "--out") {
            o.outPath = next();
        } else if (arg == "--smoke") {
            o.smoke = true;
        } else if (arg == "--help") {
            usage(0);
        } else if (parseTelemetryFlag(arg, next, o.telemetry)) {
            // handled
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage(2);
        }
    }
    if (o.smoke && !scaleSet)
        o.suite.scale = 0.002;
    initTelemetry(o.telemetry);
    return o;
}

/** One parsed HTTP response from the service. */
struct HttpReply
{
    int status = 0;
    std::string body;
    std::string cacheHeader;
};

int
connectTo(const std::string &host, int port)
{
    struct addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    std::string portText = std::to_string(port);
    if (::getaddrinfo(host.c_str(), portText.c_str(), &hints, &res) !=
        0)
        return -1;
    int fd = -1;
    for (struct addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    return fd;
}

/**
 * POST one JSON body to the service and read the whole response (the
 * server always closes after one HTTP exchange).
 */
bool
httpPost(const std::string &host, int port, const std::string &target,
         const std::string &body, HttpReply &reply)
{
    int fd = connectTo(host, port);
    if (fd < 0)
        return false;
    std::string head = "POST " + target + " HTTP/1.1\r\n" +
                       "Host: " + host + "\r\n" +
                       "Content-Type: application/json\r\n" +
                       "Content-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n";
    std::string wire = head + body;
    std::size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            ::close(fd);
            return false;
        }
        sent += std::size_t(n);
    }
    std::string raw;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        raw.append(buf, std::size_t(n));
    }
    ::close(fd);

    std::size_t headEnd = raw.find("\r\n\r\n");
    if (headEnd == std::string::npos)
        return false;
    std::size_t firstSpace = raw.find(' ');
    if (firstSpace == std::string::npos || firstSpace + 4 > headEnd)
        return false;
    reply.status = std::atoi(raw.c_str() + firstSpace + 1);
    reply.body = raw.substr(headEnd + 4);
    reply.cacheHeader.clear();
    std::size_t pos = raw.find("\r\n");
    while (pos < headEnd) {
        std::size_t lineEnd = raw.find("\r\n", pos + 2);
        std::string line = raw.substr(pos + 2, lineEnd - pos - 2);
        std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
            std::string name = line.substr(0, colon);
            std::transform(name.begin(), name.end(), name.begin(),
                           [](unsigned char c) {
                               return char(std::tolower(c));
                           });
            if (name == "x-balance-cache") {
                std::size_t v = colon + 1;
                while (v < line.size() && line[v] == ' ')
                    ++v;
                reply.cacheHeader = line.substr(v);
            }
        }
        pos = lineEnd;
    }
    return true;
}

/** Render one /schedule body covering suite superblocks [lo, hi). */
std::string
requestBody(const std::vector<std::string> &sbTexts, std::size_t lo,
            std::size_t hi)
{
    JsonWriter w;
    if (hi - lo == 1) {
        w.beginObject()
            .key("superblock").value(sbTexts[lo])
            .key("machine").value("GP4")
            .key("scheduler").value("balance")
            .key("bounds").value(true)
            .endObject();
        return w.str();
    }
    w.beginObject().key("requests").beginArray();
    for (std::size_t i = lo; i < hi; ++i) {
        w.beginObject()
            .key("superblock").value(sbTexts[i])
            .key("machine").value("GP4")
            .key("scheduler").value("balance")
            .key("bounds").value(true)
            .endObject();
    }
    w.endArray().endObject();
    return w.str();
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = p * double(sorted.size() - 1);
    std::size_t lo = std::size_t(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - double(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/**
 * Check that a serial engine and a hardware-concurrency engine render
 * bitwise-identical batch responses for the same request set.
 */
bool
checkThreadParity(const std::vector<std::string> &sbTexts,
                  const ProtocolLimits &limits)
{
    std::vector<ServiceRequest> reqs;
    std::string err;
    for (const std::string &text : sbTexts) {
        ServiceRequest r;
        if (!tryParseSuperblock(text, &r.sb, &err)) {
            std::cerr << "service_perf: suite superblock failed to "
                         "round-trip: " << err << "\n";
            return false;
        }
        reqs.push_back(std::move(r));
        if (reqs.size() >= 16)
            break;
    }
    (void)limits;

    EngineOptions serialOpts;
    serialOpts.threads = 1;
    ScheduleEngine serial(serialOpts);
    EngineOptions wideOpts;
    wideOpts.threads = 0;
    ScheduleEngine wide(wideOpts);

    std::string a = renderServiceResponse(serial.runBatch(reqs), true);
    std::string b = renderServiceResponse(wide.runBatch(reqs), true);
    if (a != b) {
        std::cerr << "service_perf: threads=1 vs threads=hardware "
                     "responses differ\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    std::vector<BenchmarkProgram> suite = buildSuite(opts.suite);

    std::vector<std::string> sbTexts;
    for (const BenchmarkProgram &prog : suite)
        for (const Superblock &sb : prog.superblocks)
            sbTexts.push_back(writeSuperblock(sb));
    bsAssert(!sbTexts.empty(), "suite is empty at scale ",
             opts.suite.scale);

    std::cout << "service_perf: " << sbTexts.size()
              << " superblocks (scale " << opts.suite.scale << "), "
              << opts.clients << " clients, batch " << opts.batch
              << ", repeat " << opts.repeat << "\n";

    // Aim at either a self-hosted server or --connect host:port.
    ServiceServer server;
    std::string host = "127.0.0.1";
    int port = 0;
    bool selfHosted = opts.connect.empty();
    if (selfHosted) {
        ServiceServerOptions so;
        so.handlerThreads = std::max(4, opts.clients);
        so.maxInflight = std::max(8, opts.clients * 2);
        so.threads = opts.threads;
        if (!server.start(so))
            return 1;
        port = server.port();
    } else {
        std::size_t colon = opts.connect.rfind(':');
        if (colon == std::string::npos) {
            std::cerr << "--connect wants host:port\n";
            return 2;
        }
        host = opts.connect.substr(0, colon);
        port = std::atoi(opts.connect.c_str() + colon + 1);
    }

    // Pre-render the request bodies so the timed loop measures the
    // service, not JSON assembly.
    std::vector<std::string> bodies;
    for (std::size_t lo = 0; lo < sbTexts.size(); lo += opts.batch) {
        std::size_t hi = std::min(lo + opts.batch, sbTexts.size());
        bodies.push_back(requestBody(sbTexts, lo, hi));
    }

    // Determinism gate 1: replay. The first POST of a body computes
    // every graph fresh; the second is served from the GraphContext
    // cache. The bodies must match bit for bit, and on a self-hosted
    // (fresh) server the header must go miss -> hit.
    HttpReply first, second;
    bool ok = httpPost(host, port, "/schedule", bodies.front(), first);
    ok = ok &&
         httpPost(host, port, "/schedule", bodies.front(), second);
    if (!ok || first.status != 200 || second.status != 200) {
        std::cerr << "service_perf: warmup POST failed (status "
                  << first.status << "/" << second.status << ")\n";
        return 1;
    }
    bool hitIdentical = first.body == second.body;
    if (!hitIdentical)
        std::cerr << "service_perf: cache hit body differs from miss "
                     "body\n";
    if (selfHosted &&
        (first.cacheHeader != "miss" || second.cacheHeader != "hit")) {
        std::cerr << "service_perf: expected miss->hit, got \""
                  << first.cacheHeader << "\"->\"" << second.cacheHeader
                  << "\"\n";
        hitIdentical = false;
    }

    // Determinism gate 2: engine thread parity (local, no sockets).
    bool threadsIdentical =
        checkThreadParity(sbTexts, ServiceServerOptions{}.protocol);

    // The timed run: each client thread walks the body list with a
    // stride, `repeat` times, and records per-request latency.
    std::mutex latencyMutex;
    std::vector<double> latencyUs;
    std::atomic<long long> failures{0};
    auto t0 = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> clients;
        for (int c = 0; c < opts.clients; ++c) {
            clients.emplace_back([&, c] {
                std::vector<double> local;
                for (int r = 0; r < opts.repeat; ++r) {
                    for (std::size_t i = std::size_t(c);
                         i < bodies.size();
                         i += std::size_t(opts.clients)) {
                        HttpReply reply;
                        auto s = std::chrono::steady_clock::now();
                        bool sent = httpPost(host, port, "/schedule",
                                             bodies[i], reply);
                        auto us =
                            std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - s)
                                .count();
                        if (!sent || reply.status != 200)
                            failures.fetch_add(1);
                        else
                            local.push_back(us);
                    }
                }
                std::lock_guard<std::mutex> lock(latencyMutex);
                latencyUs.insert(latencyUs.end(), local.begin(),
                                 local.end());
            });
        }
        for (std::thread &t : clients)
            t.join();
    }
    double wallSec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    long long requests = (long long)(latencyUs.size());
    long long superblocks =
        (long long)(sbTexts.size()) * opts.repeat;
    double throughput =
        wallSec > 0.0 ? double(superblocks) / wallSec : 0.0;
    std::sort(latencyUs.begin(), latencyUs.end());
    double p50 = percentile(latencyUs, 0.50);
    double p90 = percentile(latencyUs, 0.90);
    double p99 = percentile(latencyUs, 0.99);

    long long cacheHits = 0, cacheMisses = 0;
    if (selfHosted) {
        cacheHits = server.engine().cache().hits();
        cacheMisses = server.engine().cache().misses();
        server.stop();
    }

    std::cout << "throughput " << throughput
              << " superblocks/sec over " << wallSec << " s ("
              << requests << " requests, " << failures.load()
              << " failures)\n"
              << "latency p50 " << p50 << " us, p90 " << p90
              << " us, p99 " << p99 << " us\n"
              << "replay identical " << (hitIdentical ? "yes" : "NO")
              << ", thread parity "
              << (threadsIdentical ? "yes" : "NO") << "\n";

    JsonWriter w;
    w.beginObject()
        .key("bench").value("service_perf")
        .key("scale").value(opts.suite.scale)
        .key("seed").value((long long)(opts.suite.seed))
        .key("smoke").value(opts.smoke)
        .key("clients").value(opts.clients)
        .key("repeat").value(opts.repeat)
        .key("batch").value((long long)(opts.batch))
        .key("requests").value(requests)
        .key("failures").value(failures.load())
        .key("superblocks").value(superblocks)
        .key("wall_sec").value(wallSec)
        .key("superblocks_per_sec").value(throughput)
        .key("latency_us").beginObject()
            .key("p50").value(p50)
            .key("p90").value(p90)
            .key("p99").value(p99)
            .endObject()
        .key("cache").beginObject()
            .key("hits").value(cacheHits)
            .key("misses").value(cacheMisses)
            .endObject()
        .key("hit_identical_to_miss").value(hitIdentical)
        .key("identical_across_threads").value(threadsIdentical)
        .endObject();

    bsAssert(jsonLooksValid(w.str()),
             "service_perf produced malformed JSON");
    std::ofstream out(opts.outPath);
    bsAssert(out.good(), "cannot open ", opts.outPath);
    out << w.str() << "\n";
    out.close();
    std::cout << "wrote " << opts.outPath << "\n";

    if (!hitIdentical || !threadsIdentical || failures.load() > 0) {
        std::cerr << "service_perf: determinism or delivery failure\n";
        return 1;
    }
    return 0;
}
