/**
 * @file
 * Reproduces Table 4: the percentage of nontrivial superblocks each
 * heuristic schedules at the tightest lower bound, per machine
 * configuration, plus the paper's compile-time argument: scheduling
 * with DHASY first and escalating to Balance only when DHASY is not
 * provably optimal.
 *
 *   ./table4_optimal [--scale f] [--seed s] [--config M]...
 */

#include <iostream>

#include "eval/bench_options.hh"
#include "eval/experiment.hh"
#include "support/table.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, /*scale=*/0.25);
    auto suite = opts.buildSuitePopulation();
    HeuristicSet set = HeuristicSet::paperSet();
    auto names = set.names();

    std::cout << "Table 4: optimally scheduled nontrivial superblocks\n"
              << "suite: " << suiteSize(suite) << " superblocks (scale "
              << opts.suite.scale << ")\n\n";

    TextTable table;
    std::vector<std::string> header = {"config", "nontrivial"};
    for (const auto &n : names)
        header.push_back(n);
    header.push_back("DHASY->Balance escalations");
    table.setHeader(header);

    // The abstract's headline: % of ALL superblocks scheduled at the
    // bound (paper FS4/FS6/FS8: Best 81.65/89.62/96.09, Balance
    // 81.35/89.58/96.08).
    TextTable headline;
    std::vector<std::string> hlHeader = {"config"};
    for (const auto &n : names)
        hlHeader.push_back(n);
    headline.setHeader(hlHeader);

    for (const MachineModel &machine : opts.machines) {
        int dhasyOptimal = 0;
        int balanceNeeded = 0;
        int dhasyIdx = -1;
        for (std::size_t h = 0; h < names.size(); ++h) {
            if (names[h] == "DHASY")
                dhasyIdx = int(h);
        }
        PopulationMetrics m = evaluatePopulation(
            suite, machine, set, {},
            [&](const Superblock &, const SuperblockEval &eval) {
                bool dhasyHitsBound =
                    eval.wct[std::size_t(dhasyIdx)] <=
                    eval.tightest + 1e-9;
                if (dhasyHitsBound)
                    ++dhasyOptimal;
                else
                    ++balanceNeeded;
            },
            opts.threads);

        int nontrivial = m.superblocks - m.trivialSuperblocks;
        std::vector<std::string> row = {machine.name(),
                                        std::to_string(nontrivial)};
        for (std::size_t h = 0; h < names.size(); ++h) {
            row.push_back(fmtPercent(
                100.0 * m.optimalNontrivialFraction[h]));
        }
        row.push_back(fmtPercent(100.0 * balanceNeeded /
                                 std::max(1, m.superblocks)) +
                      " of suite");
        table.addRow(row);

        std::vector<std::string> hlRow = {machine.name()};
        for (std::size_t h = 0; h < names.size(); ++h)
            hlRow.push_back(fmtPercent(100.0 * m.optimalFraction[h]));
        headline.addRow(hlRow);
    }
    std::cout << table.render() << "\n";
    std::cout << "superblocks scheduled at the bound (all, trivial "
                 "included):\n"
              << headline.render() << "\n";

    std::cout
        << "expected shape (paper): Balance schedules the largest\n"
        << "fraction of nontrivial superblocks optimally among the\n"
        << "primaries; running Balance only where DHASY misses the\n"
        << "bound touches roughly a fifth of the suite.\n";
    return 0;
}
