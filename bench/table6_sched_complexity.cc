/**
 * @file
 * Reproduces Table 6: computational cost of the scheduling
 * heuristics as per-superblock loop-trip counts (excluding the
 * static Section 4 bound computations, as in the paper), plus the
 * light-vs-full dynamic-update comparison for Balance.
 *
 *   ./table6_sched_complexity [--scale f] [--seed s] [--config M]...
 */

#include <iostream>

#include "eval/bench_options.hh"
#include "eval/experiment.hh"
#include "support/parallel_for.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, /*scale=*/0.15);
    auto suite = opts.buildSuitePopulation();

    std::cout << "Table 6: heuristic cost (loop trips per superblock, "
                 "bounds excluded)\n"
              << "suite: " << suiteSize(suite) << " superblocks (scale "
              << opts.suite.scale << ")\n\n";

    // The lineup plus Balance-full-update for the last row.
    std::vector<std::shared_ptr<const Scheduler>> scheds = {
        std::make_shared<SuccessiveRetirementScheduler>(),
        std::make_shared<CriticalPathScheduler>(),
        std::make_shared<GStarScheduler>(),
        std::make_shared<DhasyScheduler>(),
        std::make_shared<HelpScheduler>(),
        std::make_shared<BalanceScheduler>(),
    };
    BalanceConfig fullCfg;
    fullCfg.useLightUpdate = false;
    scheds.push_back(
        std::make_shared<BalanceScheduler>(fullCfg, "Balance-full"));

    std::vector<const Superblock *> flat;
    for (const BenchmarkProgram &prog : suite)
        for (const Superblock &sb : prog.superblocks)
            flat.push_back(&sb);

    for (const MachineModel &machine : opts.machines) {
        // Trip counts land in per-superblock slots and are folded
        // into the stats in suite order, keeping the table bytes
        // independent of --threads.
        std::vector<std::vector<double>> slots(
            flat.size(), std::vector<double>(scheds.size(), 0.0));
        parallelFor(
            flat.size(),
            [&](std::size_t s) {
                const Superblock &sb = *flat[s];
                GraphContext ctx(sb);
                BoundConfig boundCfg;
                BoundsToolkit toolkit(ctx, machine, boundCfg);
                for (std::size_t i = 0; i < scheds.size(); ++i) {
                    SchedulerStats stats;
                    ScheduleRequest req;
                    req.stats = &stats;
                    auto *bal = dynamic_cast<const BalanceScheduler *>(
                        scheds[i].get());
                    if (bal && bal->config().useRcBounds)
                        bal->runWithToolkit(ctx, machine, toolkit, req);
                    else
                        scheds[i]->run(ctx, machine, req);
                    slots[s][i] = double(stats.loopTrips);
                }
            },
            opts.threads);

        std::vector<SampleStat> trips(scheds.size());
        for (const std::vector<double> &row : slots)
            for (std::size_t i = 0; i < scheds.size(); ++i)
                trips[i].add(row[i]);

        TextTable table;
        table.setHeader({"heuristic", "average", "median"});
        for (std::size_t i = 0; i < scheds.size(); ++i) {
            table.addRow({scheds[i]->name(),
                          fmtCount((long long)(trips[i].mean() + 0.5)),
                          fmtCount(
                              (long long)(trips[i].median() + 0.5))});
        }
        std::cout << machine.name() << "\n" << table.render() << "\n";
    }

    std::cout
        << "expected shape (paper): CP cheapest; Help and Balance\n"
        << "empirically comparable to DHASY; the light update cuts\n"
        << "Balance's dynamic-bound cost by an order of magnitude\n"
        << "versus Balance-full.\n";
    return 0;
}
