/**
 * @file
 * Reproduces Figure 8: the fraction of gcc superblocks scheduled
 * within X extra dynamic cycles of the tightest lower bound on the
 * FS4 configuration, for every heuristic plus Best. X is swept over
 * a log-style grid, matching the paper's log-scale horizontal axis.
 *
 *   ./figure8_gcc_cdf [--scale f] [--seed s] [--config M]
 */

#include <iostream>

#include "eval/bench_options.hh"
#include "eval/experiment.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, /*scale=*/0.5);
    MachineModel machine = opts.machines.size() == 6
        ? MachineModel::fs4() // paper's Figure 8 machine
        : opts.machines.front();

    // The figure is about gcc only.
    BenchmarkProgram gcc;
    for (const ProgramSpec &spec : specInt95Specs()) {
        if (spec.name == "gcc")
            gcc = buildProgram(spec, opts.suite.seed, opts.suite.scale);
    }
    std::vector<BenchmarkProgram> suite = {gcc};

    std::cout << "Figure 8: fraction of gcc superblocks within X extra "
                 "dynamic cycles of the tightest bound ("
              << machine.name() << ")\n"
              << "population: " << gcc.superblocks.size()
              << " superblocks (scale " << opts.suite.scale << ")\n\n";

    HeuristicSet set = HeuristicSet::paperSet();
    std::vector<SurvivalCurve> curves(set.names().size());

    evaluatePopulation(
        suite, machine, set, {},
        [&](const Superblock &, const SuperblockEval &eval) {
            for (std::size_t h = 0; h < eval.wct.size(); ++h) {
                double extra = eval.frequency *
                               (eval.wct[h] - eval.tightest);
                curves[h].add(std::max(0.0, extra));
            }
        },
        opts.threads);

    std::vector<double> thresholds = {0,    1,     3,     10,    30,
                                      100,  300,   1000,  3000,  10000,
                                      1e5,  1e6,   1e7};
    TextTable table;
    std::vector<std::string> header = {"heuristic"};
    for (double t : thresholds)
        header.push_back("<=" + fmtCount((long long)t));
    table.setHeader(header);
    for (std::size_t h = 0; h < curves.size(); ++h) {
        auto fractions = curves[h].fractionAtOrBelow(thresholds);
        std::vector<std::string> row = {set.names()[h]};
        for (double f : fractions)
            row.push_back(fmtPercent(100.0 * f, 2));
        table.addRow(row);
    }
    std::cout << table.render() << "\n";
    std::cout
        << "expected shape (paper): the Y-intercept (X = 0) is the\n"
        << "fraction of optimally scheduled superblocks; Balance nearly\n"
        << "matches Best across the whole range, Help is close, and\n"
        << "SR/CP/G*/DHASY trail with fatter tails.\n";
    return 0;
}
