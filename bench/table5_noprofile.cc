/**
 * @file
 * Reproduces Table 5: performance without profiling data. Every
 * probability-driven heuristic is steered by the assumed weights
 * (last branch 1000, all others 1) while the reported slowdown is
 * still measured against the true probabilities; Best also still
 * selects by the true probabilities, exactly as in the paper.
 *
 *   ./table5_noprofile [--scale f] [--seed s] [--config M]...
 */

#include <iostream>

#include "eval/bench_options.hh"
#include "eval/experiment.hh"
#include "support/table.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, /*scale=*/0.25);
    auto suite = opts.buildSuitePopulation();
    HeuristicSet set = HeuristicSet::paperSet();
    auto names = set.names();

    std::cout << "Table 5: slowdown with no-profile steering weights\n"
              << "(last branch weight 1000, all others 1)\n"
              << "suite: " << suiteSize(suite) << " superblocks (scale "
              << opts.suite.scale << ")\n\n";

    TextTable table;
    std::vector<std::string> header = {"config", "steering"};
    for (const auto &n : names)
        header.push_back(n);
    table.setHeader(header);

    std::vector<double> deltaSum(names.size(), 0.0);
    for (const MachineModel &machine : opts.machines) {
        PopulationMetrics profiled = evaluatePopulation(
            suite, machine, set, {}, nullptr, opts.threads);
        EvalOptions noProfile;
        noProfile.noProfileSteering = true;
        PopulationMetrics assumed = evaluatePopulation(
            suite, machine, set, noProfile, nullptr, opts.threads);

        std::vector<std::string> rowP = {machine.name(), "profile"};
        std::vector<std::string> rowA = {"", "assumed"};
        for (std::size_t h = 0; h < names.size(); ++h) {
            rowP.push_back(
                fmtPercent(100.0 * profiled.nontrivialSlowdown[h]));
            rowA.push_back(
                fmtPercent(100.0 * assumed.nontrivialSlowdown[h]));
            deltaSum[h] += assumed.nontrivialSlowdown[h] -
                           profiled.nontrivialSlowdown[h];
        }
        table.addRow(rowP);
        table.addRow(rowA);
        table.addRule();
    }
    std::vector<std::string> delta = {"Avg delta", ""};
    for (std::size_t h = 0; h < names.size(); ++h) {
        delta.push_back(fmtPercent(
            100.0 * deltaSum[h] / double(opts.machines.size()), 3));
    }
    table.addRow(delta);
    std::cout << table.render() << "\n";

    std::cout
        << "expected shape (paper): SR and CP are unchanged (profile\n"
        << "insensitive); G* collapses onto CP; DHASY degrades the\n"
        << "most; Help and Balance lose only a few hundredths of a\n"
        << "percent -- they are profile insensitive on this suite.\n";
    return 0;
}
