/**
 * @file
 * Reproduces Table 7: which components of Balance matter. Sweeps
 * the three component switches of Section 5 — HlpDel (Observation
 * 1), LC-based bounds (Observation 2), and pairwise tradeoffs
 * (Observation 3, with the compatible-branch selection) — crossed
 * with the per-cycle vs per-operation dynamic-update policy, and
 * reports the nontrivial-superblock slowdown of every variant.
 *
 *   ./table7_ablation [--scale f] [--seed s] [--config M]...
 */

#include <iostream>

#include "eval/bench_options.hh"
#include "eval/experiment.hh"
#include "support/table.hh"

using namespace balance;

namespace
{

std::shared_ptr<const Scheduler>
variant(const char *name, bool hlpDel, bool bounds, bool selection,
        bool tradeoff, bool perOp)
{
    BalanceConfig cfg;
    cfg.useHlpDel = hlpDel;
    cfg.useRcBounds = bounds;
    cfg.useSelection = selection;
    cfg.useTradeoff = tradeoff && bounds;
    cfg.updatePerOp = perOp;
    return std::make_shared<BalanceScheduler>(cfg, name);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, /*scale=*/0.15);
    auto suite = opts.buildSuitePopulation();

    std::cout << "Table 7: Balance component study (nontrivial "
                 "slowdown)\n"
              << "suite: " << suiteSize(suite) << " superblocks (scale "
              << opts.suite.scale << ")\n\n";

    for (bool perOp : {false, true}) {
        HeuristicSet set;
        set.withBest = false;
        set.primaries = {
            variant("Help", false, false, false, false, perOp),
            variant("Help+Bnd", false, true, false, false, perOp),
            variant("HlpDel", true, false, false, false, perOp),
            variant("HlpDel+Bnd", true, true, false, false, perOp),
            variant("HlpDel+Bnd+Sel", true, true, true, false, perOp),
            variant("Balance", true, true, true, true, perOp),
        };
        auto names = set.names();

        TextTable table;
        std::vector<std::string> header = {"config"};
        for (const auto &n : names)
            header.push_back(n);
        table.setHeader(header);

        std::vector<double> sums(names.size(), 0.0);
        for (const MachineModel &machine : opts.machines) {
            PopulationMetrics m = evaluatePopulation(
                suite, machine, set, {}, nullptr, opts.threads);
            std::vector<std::string> row = {machine.name()};
            for (std::size_t h = 0; h < names.size(); ++h) {
                row.push_back(
                    fmtPercent(100.0 * m.nontrivialSlowdown[h]));
                sums[h] += m.nontrivialSlowdown[h];
            }
            table.addRow(row);
        }
        table.addRule();
        std::vector<std::string> avg = {"Average"};
        for (std::size_t h = 0; h < names.size(); ++h) {
            avg.push_back(fmtPercent(
                100.0 * sums[h] / double(opts.machines.size()), 3));
        }
        table.addRow(avg);

        std::cout << "update "
                  << (perOp ? "per scheduled operation"
                            : "once per cycle")
                  << "\n"
                  << table.render() << "\n";
    }

    std::cout
        << "expected shape (paper): per-operation updating is the\n"
        << "largest single factor; the LC-based bounds come second;\n"
        << "HlpDel helps only together with the bounds and is best\n"
        << "with bounds and tradeoffs; Help+Bnd lands close to the\n"
        << "full Balance when pairwise bounds are too dear.\n";
    return 0;
}
