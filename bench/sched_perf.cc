/**
 * @file
 * Wall-clock comparison of the allocation-free scheduler engine
 * against the retained naive reference (sched/reference/reference.hh)
 * on the Best envelope — the primaries plus the 121-point combo grid,
 * the dominant scheduling cost of the full-scale suite — for the GP4
 * and FS8 machine configurations. Emits machine-readable results as
 * JSON (BENCH_sched.json when run from the repo root) and asserts
 * along the way that both paths produce bitwise-identical schedules
 * and weighted completion times.
 *
 *   ./sched_perf [--scale f] [--seed s] [--config M]...
 *                [--out path] [--smoke]
 *
 * --smoke shrinks the suite to a seconds-scale run and is what the
 * perf-labeled ctest target uses; the emitted document is validated
 * with jsonLooksValid() in every mode.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "eval/bench_options.hh"
#include "machine/machine_model.hh"
#include "sched/best_scheduler.hh"
#include "sched/heuristics.hh"
#include "sched/reference/reference.hh"
#include "sched/sched_scratch.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/telemetry.hh"
#include "support/trace.hh"
#include "workload/suite.hh"

using namespace balance;

namespace
{

struct Options
{
    SuiteOptions suite;
    std::vector<MachineModel> machines;
    std::string outPath = "BENCH_sched.json";
    bool smoke = false;
    TelemetryOptions telemetry;
};

[[noreturn]] void
usage(int code)
{
    std::cout
        << "sched_perf: naive-vs-engine Best-envelope wall clock\n"
        << "  --scale <0..1]   suite fraction (default 0.05)\n"
        << "  --seed <u64>     suite master seed\n"
        << "  --config <name>  machine config (repeatable; default\n"
        << "                   GP4 and FS8)\n"
        << "  --out <path>     JSON output (default BENCH_sched.json)\n"
        << "  --smoke          tiny suite; same checks\n"
        << telemetryUsage();
    std::exit(code);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    o.suite.scale = 0.05;
    bool scaleSet = false;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--scale") {
            std::string text = next();
            double v = parseDoubleOption("sched_perf", arg, text, 2);
            if (v <= 0.0 || v > 1.0)
                optionError("sched_perf", arg, text,
                            "number in (0, 1]", 2);
            o.suite.scale = v;
            scaleSet = true;
        } else if (arg == "--seed") {
            o.suite.seed = parseUint64Option("sched_perf", arg,
                                             next(), 2);
        } else if (arg == "--config") {
            o.machines.push_back(MachineModel::byName(next()));
        } else if (arg == "--out") {
            o.outPath = next();
        } else if (arg == "--smoke") {
            o.smoke = true;
        } else if (arg == "--help") {
            usage(0);
        } else if (parseTelemetryFlag(arg, next, o.telemetry)) {
            // handled
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage(2);
        }
    }
    if (o.smoke && !scaleSet)
        o.suite.scale = 0.004;
    if (o.machines.empty())
        o.machines = {MachineModel::gp4(), MachineModel::fs8()};
    initTelemetry(o.telemetry);
    return o;
}

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** The reference Best envelope's primary lineup, in its order. */
std::vector<std::shared_ptr<const Scheduler>>
bestPrimaries()
{
    return {std::make_shared<SuccessiveRetirementScheduler>(),
            std::make_shared<CriticalPathScheduler>(),
            std::make_shared<GStarScheduler>(),
            std::make_shared<DhasyScheduler>()};
}

bool
identicalSchedules(const Superblock &sb, const Schedule &a,
                   const Schedule &b)
{
    if (a.numOps() != b.numOps() || a.wct(sb) != b.wct(sb))
        return false;
    for (OpId v = 0; v < sb.numOps(); ++v) {
        if (a.issueOf(v) != b.issueOf(v))
            return false;
    }
    return true;
}

struct MachineRun
{
    std::string name;
    int superblocks = 0;
    double naiveMs = 0.0;
    double engineMs = 0.0;
    bool identical = true;
};

MachineRun
runMachine(const std::vector<BenchmarkProgram> &suite,
           const MachineModel &machine)
{
    MachineRun run;
    run.name = machine.name();

    // Each path gets its own cold GraphContexts so neither inherits
    // closures or cached analyses the other one computed.
    std::vector<std::unique_ptr<GraphContext>> naiveCtx, engineCtx;
    for (const BenchmarkProgram &prog : suite) {
        for (const Superblock &sb : prog.superblocks) {
            naiveCtx.push_back(std::make_unique<GraphContext>(sb));
            engineCtx.push_back(std::make_unique<GraphContext>(sb));
        }
    }
    run.superblocks = int(naiveCtx.size());

    std::vector<Schedule> naive(naiveCtx.size());
    {
        TraceSpan span("sched_perf.naive",
                       (long long)(naiveCtx.size()));
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < naiveCtx.size(); ++i) {
            const GraphContext &ctx = *naiveCtx[i];
            naive[i] = sched_reference::bestSchedule(
                ctx, machine, steeringWeights(ctx.sb(), {}));
        }
        run.naiveMs = msSince(t0);
    }

    BestScheduler best(bestPrimaries());
    std::vector<Schedule> engine(engineCtx.size());
    SchedScratch scratch;
    {
        TraceSpan span("sched_perf.engine",
                       (long long)(engineCtx.size()));
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < engineCtx.size(); ++i) {
            ScheduleRequest req;
            req.scratch = &scratch;
            engine[i] = best.run(*engineCtx[i], machine, req);
        }
        run.engineMs = msSince(t0);
    }

    // Harvest the scratch tallies outside the timed loops; the fold
    // is serial so the snapshot is deterministic.
    if (metricsCollectionEnabled()) {
        MetricRegistry &reg = MetricRegistry::global();
        reg.counter("sched.priority_tables.hits")
            .add(scratch.stats.tableHits);
        reg.counter("sched.priority_tables.misses")
            .add(scratch.stats.tableMisses);
        reg.counter("sched.best.grid_runs")
            .add(scratch.stats.gridRuns);
        reg.counter("sched.best.grid_skipped")
            .add(scratch.stats.gridSkipped);
        reg.gauge("sched.scratch.high_water_bytes")
            .observeMax((long long)(scratch.highWaterBytes()));
    }

    for (std::size_t i = 0; i < naive.size(); ++i) {
        const Superblock &sb = naiveCtx[i]->sb();
        engine[i].validate(sb, machine);
        if (!identicalSchedules(sb, naive[i], engine[i])) {
            run.identical = false;
            std::cerr << "MISMATCH on superblock " << i << " ("
                      << machine.name() << ")\n";
        }
    }
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    std::vector<BenchmarkProgram> suite = buildSuite(opts.suite);

    std::cout << "sched_perf: " << suiteSize(suite)
              << " superblocks (scale " << opts.suite.scale << ")\n\n";

    JsonWriter w;
    w.beginObject()
        .key("bench").value("sched_perf")
        .key("scale").value(opts.suite.scale)
        .key("seed").value((long long)(opts.suite.seed))
        .key("smoke").value(opts.smoke)
        .key("machines").beginArray();

    bool allIdentical = true;
    for (const MachineModel &machine : opts.machines) {
        MachineRun run = runMachine(suite, machine);
        allIdentical = allIdentical && run.identical;
        double speedup =
            run.engineMs > 0.0 ? run.naiveMs / run.engineMs : 0.0;
        std::cout << run.name << ": naive " << run.naiveMs
                  << " ms, engine " << run.engineMs << " ms, speedup "
                  << speedup << "x, identical "
                  << (run.identical ? "yes" : "NO") << "\n";
        w.beginObject()
            .key("name").value(run.name)
            .key("superblocks").value(run.superblocks)
            .key("naive_ms").value(run.naiveMs)
            .key("engine_ms").value(run.engineMs)
            .key("speedup").value(speedup)
            .key("identical").value(run.identical)
            .endObject();
    }
    w.endArray().endObject();

    bsAssert(jsonLooksValid(w.str()),
             "sched_perf produced malformed JSON");
    std::ofstream out(opts.outPath);
    bsAssert(out.good(), "cannot open ", opts.outPath);
    out << w.str() << "\n";
    out.close();
    std::cout << "\nwrote " << opts.outPath << "\n";

    if (!allIdentical) {
        std::cerr << "schedules diverged from the reference\n";
        return 1;
    }
    return 0;
}
