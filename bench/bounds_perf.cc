/**
 * @file
 * Wall-clock comparison of the scratch-arena bound engine against
 * the retained naive reference (bounds/reference.hh) on the
 * Pairwise/Triplewise-dominated full bound computation, for the GP4
 * and FS8 machine configurations. Emits machine-readable results as
 * JSON (BENCH_bounds.json when run from the repo root) and asserts
 * along the way that both paths produce bitwise-identical bounds.
 *
 *   ./bounds_perf [--scale f] [--seed s] [--config M]...
 *                 [--out path] [--smoke]
 *
 * --smoke shrinks the suite to a seconds-scale run and is what the
 * perf-labeled ctest target uses; the emitted document is validated
 * with jsonLooksValid() in every mode.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bounds/bound_scratch.hh"
#include "bounds/reference.hh"
#include "bounds/superblock_bounds.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/telemetry.hh"
#include "support/trace.hh"
#include "workload/suite.hh"

using namespace balance;

namespace
{

struct Options
{
    SuiteOptions suite;
    std::vector<MachineModel> machines;
    std::string outPath = "BENCH_bounds.json";
    bool smoke = false;
    TelemetryOptions telemetry;
};

[[noreturn]] void
usage(int code)
{
    std::cout
        << "bounds_perf: naive-vs-engine bound wall clock\n"
        << "  --scale <0..1]   suite fraction (default 0.05)\n"
        << "  --seed <u64>     suite master seed\n"
        << "  --config <name>  machine config (repeatable; default\n"
        << "                   GP4 and FS8)\n"
        << "  --out <path>     JSON output (default BENCH_bounds.json)\n"
        << "  --smoke          tiny suite; same checks\n"
        << telemetryUsage();
    std::exit(code);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    o.suite.scale = 0.05;
    bool scaleSet = false;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--scale") {
            o.suite.scale = std::stod(next());
            scaleSet = true;
        } else if (arg == "--seed") {
            o.suite.seed = std::stoull(next());
        } else if (arg == "--config") {
            o.machines.push_back(MachineModel::byName(next()));
        } else if (arg == "--out") {
            o.outPath = next();
        } else if (arg == "--smoke") {
            o.smoke = true;
        } else if (arg == "--help") {
            usage(0);
        } else if (parseTelemetryFlag(arg, next, o.telemetry)) {
            // handled
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage(2);
        }
    }
    if (o.smoke && !scaleSet)
        o.suite.scale = 0.004;
    if (o.machines.empty())
        o.machines = {MachineModel::gp4(), MachineModel::fs8()};
    initTelemetry(o.telemetry);
    return o;
}

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
identicalBounds(const WctBounds &a, const WctBounds &b)
{
    return a.cp == b.cp && a.hu == b.hu && a.rj == b.rj &&
           a.lc == b.lc && a.pw == b.pw && a.tw == b.tw;
}

struct MachineRun
{
    std::string name;
    int superblocks = 0;
    double naiveMs = 0.0;
    double engineMs = 0.0;
    bool identical = true;
};

MachineRun
runMachine(const std::vector<BenchmarkProgram> &suite,
           const MachineModel &machine)
{
    MachineRun run;
    run.name = machine.name();

    // Each path gets its own cold GraphContexts so neither inherits
    // closures the other one computed.
    std::vector<std::unique_ptr<GraphContext>> naiveCtx, engineCtx;
    for (const BenchmarkProgram &prog : suite) {
        for (const Superblock &sb : prog.superblocks) {
            naiveCtx.push_back(std::make_unique<GraphContext>(sb));
            engineCtx.push_back(std::make_unique<GraphContext>(sb));
        }
    }
    run.superblocks = int(naiveCtx.size());

    std::vector<WctBounds> naive(naiveCtx.size());
    {
        TraceSpan span("bounds_perf.naive",
                       (long long)(naiveCtx.size()));
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < naiveCtx.size(); ++i)
            naive[i] =
                reference::computeWctBounds(*naiveCtx[i], machine);
        run.naiveMs = msSince(t0);
    }

    std::vector<WctBounds> engine(engineCtx.size());
    BoundScratch scratch(machine);
    {
        TraceSpan span("bounds_perf.engine",
                       (long long)(engineCtx.size()));
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < engineCtx.size(); ++i)
            engine[i] = computeWctBounds(*engineCtx[i], machine, {},
                                         nullptr, &scratch);
        run.engineMs = msSince(t0);
    }

    // Harvest the scratch tallies outside the timed loops; the fold
    // is serial so the snapshot is deterministic.
    if (metricsCollectionEnabled()) {
        MetricRegistry &reg = MetricRegistry::global();
        reg.counter("bounds.pair_skeleton.hits")
            .add(scratch.stats.pairSkeletonHits);
        reg.counter("bounds.pair_skeleton.misses")
            .add(scratch.stats.pairSkeletonMisses);
        reg.counter("bounds.triple_skeleton.hits")
            .add(scratch.stats.tripleSkeletonHits);
        reg.counter("bounds.triple_skeleton.misses")
            .add(scratch.stats.tripleSkeletonMisses);
        reg.counter("bounds.relax.epoch_resets")
            .add(scratch.table.resetCount());
        reg.gauge("bounds.scratch.high_water_bytes")
            .observeMax((long long)(scratch.arena.highWaterBytes()));
    }

    for (std::size_t i = 0; i < naive.size(); ++i) {
        if (!identicalBounds(naive[i], engine[i])) {
            run.identical = false;
            std::cerr << "MISMATCH on superblock " << i << " ("
                      << machine.name() << ")\n";
        }
    }
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    std::vector<BenchmarkProgram> suite = buildSuite(opts.suite);

    std::cout << "bounds_perf: " << suiteSize(suite)
              << " superblocks (scale " << opts.suite.scale << ")\n\n";

    JsonWriter w;
    w.beginObject()
        .key("bench").value("bounds_perf")
        .key("scale").value(opts.suite.scale)
        .key("seed").value((long long)(opts.suite.seed))
        .key("smoke").value(opts.smoke)
        .key("machines").beginArray();

    bool allIdentical = true;
    for (const MachineModel &machine : opts.machines) {
        MachineRun run = runMachine(suite, machine);
        allIdentical = allIdentical && run.identical;
        double speedup =
            run.engineMs > 0.0 ? run.naiveMs / run.engineMs : 0.0;
        std::cout << run.name << ": naive " << run.naiveMs
                  << " ms, engine " << run.engineMs << " ms, speedup "
                  << speedup << "x, identical "
                  << (run.identical ? "yes" : "NO") << "\n";
        w.beginObject()
            .key("name").value(run.name)
            .key("superblocks").value(run.superblocks)
            .key("naive_ms").value(run.naiveMs)
            .key("engine_ms").value(run.engineMs)
            .key("speedup").value(speedup)
            .key("identical").value(run.identical)
            .endObject();
    }
    w.endArray().endObject();

    bsAssert(jsonLooksValid(w.str()),
             "bounds_perf produced malformed JSON");
    std::ofstream out(opts.outPath);
    bsAssert(out.good(), "cannot open ", opts.outPath);
    out << w.str() << "\n";
    out.close();
    std::cout << "\nwrote " << opts.outPath << "\n";

    if (!allIdentical) {
        std::cerr << "bound values diverged from the reference\n";
        return 1;
    }
    return 0;
}
