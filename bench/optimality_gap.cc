/**
 * @file
 * Extension bench (not a paper table): how tight is the tightest
 * lower bound against the *true* optimum? The paper can only compare
 * bounds to the best schedule found; with the exact branch-and-bound
 * oracle this bench closes the loop on small superblocks, reporting
 * the fraction where tightest == optimal and the residual gap.
 *
 *   ./optimality_gap [--scale f] [--seed s] [--config M]...
 */

#include <iostream>

#include "bounds/superblock_bounds.hh"
#include "eval/bench_options.hh"
#include "sched/optimal.hh"
#include "support/parallel_for.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "workload/generator.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, /*scale=*/1.0);

    // Small-superblock population (the oracle is exponential).
    GeneratorParams params;
    params.blockGeoP = 0.55;
    params.opsPerBlockMu = 1.0;
    params.opsPerBlockSigma = 0.5;
    params.maxOps = 14;
    params.maxBlocks = 5;
    int population = int(400 * opts.suite.scale);
    Rng rng(opts.suite.seed);
    std::vector<Superblock> sbs;
    for (int i = 0; i < population; ++i) {
        Rng child = rng.fork();
        sbs.push_back(generateSuperblock(child, params,
                                         "opt.sb" + std::to_string(i)));
    }
    std::cout << "Optimality gap of the tightest bound (exact oracle, "
              << population << " small superblocks)\n\n";

    TextTable table;
    table.setHeader({"config", "proven", "bound==opt", "avg gap",
                     "max gap"});
    for (const MachineModel &machine : opts.machines) {
        // (proven, gap%) per superblock; the oracle runs are the
        // expensive part and are embarrassingly parallel.
        struct GapSlot
        {
            bool proven = false;
            double gapPercent = 0.0;
        };
        std::vector<GapSlot> slots(sbs.size());
        parallelFor(
            sbs.size(),
            [&](std::size_t i) {
                GraphContext ctx(sbs[i]);
                WctBounds bounds = computeWctBounds(ctx, machine);
                OptimalOptions oo;
                oo.maxNodes = 400000;
                OptimalResult opt = optimalSchedule(ctx, machine, oo);
                if (!opt.proven)
                    return;
                slots[i].proven = true;
                slots[i].gapPercent =
                    (opt.wct - bounds.tightest()) /
                    std::max(opt.wct, 1e-9) * 100.0;
            },
            opts.threads);

        int proven = 0;
        int exact = 0;
        RunningStat gap;
        for (const GapSlot &slot : slots) {
            if (!slot.proven)
                continue;
            ++proven;
            gap.add(std::max(0.0, slot.gapPercent));
            if (slot.gapPercent <= 1e-9)
                ++exact;
        }
        table.addRow({machine.name(), std::to_string(proven),
                      fmtPercent(100.0 * exact / std::max(1, proven)),
                      fmtPercent(gap.mean()),
                      fmtPercent(gap.max())});
    }
    std::cout << table.render() << "\n";
    std::cout << "supports the paper's claim that the pairwise and\n"
              << "triplewise bounds are very tight: on most small\n"
              << "superblocks the tightest bound equals the optimum.\n";
    return 0;
}
