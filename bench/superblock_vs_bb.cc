/**
 * @file
 * Extension bench for the paper's *motivation* (Section 1): "since
 * there is generally insufficient instruction level parallelism
 * within a single basic block, higher performance is achieved by
 * speculatively scheduling operations in superblocks."
 *
 * Over a population of synthetic profiled CFG regions this bench
 * compares, per machine configuration, the expected dynamic cycles
 * of
 *   (a) per-basic-block scheduling (no cross-branch motion): each
 *       trace block scheduled in isolation; a traversal that leaves
 *       at exit k pays the sum of the makespans of blocks 0..k,
 *       i.e. sum over blocks of freq(block) * makespan(block);
 *   (b) superblock scheduling with Balance (plus renaming), where a
 *       traversal pays issue(exit_k) + latency.
 * Off-trace blocks cost the same in both models and are excluded.
 *
 *   ./superblock_vs_bb [--scale f] [--seed s] [--config M]...
 */

#include <iostream>

#include "cfg/cfg_gen.hh"
#include "cfg/superblock_form.hh"
#include "core/balance_scheduler.hh"
#include "eval/bench_options.hh"
#include "sched/heuristics.hh"
#include "support/parallel_for.hh"
#include "support/table.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, /*scale=*/1.0);
    int regions = std::max(1, int(120 * opts.suite.scale));

    std::cout << "Superblock vs per-basic-block scheduling ("
              << regions << " synthetic CFG regions)\n\n";

    // Build the regions and their traces once.
    Rng rng(opts.suite.seed);
    CfgGenParams genParams;
    genParams.minBlocks = 6;
    genParams.maxBlocks = 24;
    genParams.instrsMu = 1.7;
    std::vector<CfgProgram> cfgs;
    for (int i = 0; i < regions; ++i) {
        Rng child = rng.fork();
        cfgs.push_back(generateCfg(child, genParams));
    }

    FormOptions formOpts;
    formOpts.renameRegisters = true;

    TextTable table;
    table.setHeader({"config", "basic-block cycles",
                     "superblock cycles", "speedup"});
    for (const MachineModel &machine : opts.machines) {
        CriticalPathScheduler cp;
        BalanceScheduler bal;
        // One (bb, sb) cycle pair per region; regions are
        // independent, the totals fold in region order below.
        std::vector<std::pair<double, double>> slots(cfgs.size());
        parallelFor(
            cfgs.size(),
            [&](std::size_t r) {
                const CfgProgram &cfg = cfgs[r];
                double bb = 0.0;
                double sbTotal = 0.0;
                Liveness live = Liveness::allLiveOut(cfg);
                for (const Trace &trace : selectTraces(cfg)) {
                    // (a) per-block: each block is a one-exit
                    // superblock scheduled alone; no speculation.
                    for (int bi : trace.blocks) {
                        Trace single;
                        single.blocks = {bi};
                        Superblock blockSb = formSuperblock(
                            cfg, single, live, "bb", formOpts);
                        GraphContext ctx(blockSb);
                        Schedule s = cp.run(ctx, machine);
                        bb += cfg.block(bi).frequency *
                              double(s.makespan());
                    }
                    // (b) the superblock, scheduled by Balance.
                    Superblock sb = formSuperblock(cfg, trace, live,
                                                   "sb", formOpts);
                    GraphContext ctx(sb);
                    Schedule s = bal.run(ctx, machine);
                    s.validate(sb, machine);
                    sbTotal += sb.execFrequency() * s.wct(sb);
                }
                slots[r] = {bb, sbTotal};
            },
            opts.threads);

        double bbCycles = 0.0;
        double sbCycles = 0.0;
        for (const auto &[bb, sbc] : slots) {
            bbCycles += bb;
            sbCycles += sbc;
        }
        table.addRow({machine.name(),
                      fmtCount((long long)(bbCycles + 0.5)),
                      fmtCount((long long)(sbCycles + 0.5)),
                      fmtDouble(bbCycles / sbCycles, 3) + "x"});
    }
    std::cout << table.render() << "\n";
    std::cout
        << "expected shape (paper's motivation): superblock\n"
        << "scheduling wins everywhere, and the advantage grows with\n"
        << "machine width -- single basic blocks cannot feed wide\n"
        << "machines.\n";
    return 0;
}
