/**
 * @file
 * Ablation of the triplewise bound's budget knobs (DESIGN.md calls
 * these out as reproduction choices): the branch-count cap, the
 * per-dimension latency-range cap, and the per-superblock evaluation
 * budget. For each setting the bench reports the bound quality (how
 * often TW improves on PW, and the average gap closed) against the
 * cost in relaxation evaluations.
 *
 *   ./ablation_tw_budget [--scale f] [--seed s] [--config M]
 */

#include <iostream>

#include "bounds/superblock_bounds.hh"
#include "eval/bench_options.hh"
#include "support/parallel_for.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, /*scale=*/0.15);
    auto suite = opts.buildSuitePopulation();
    MachineModel machine = opts.machines.size() == 6
        ? MachineModel::fs4()
        : opts.machines.front();

    std::cout << "Triplewise budget ablation on " << machine.name()
              << " (" << suiteSize(suite) << " superblocks)\n\n";

    struct Setting
    {
        const char *name;
        TriplewiseOptions tw;
    };
    std::vector<Setting> settings;
    {
        Setting s;
        s.name = "maxBranches=6";
        s.tw.maxBranches = 6;
        settings.push_back(s);
        s.name = "default (12)";
        s.tw = TriplewiseOptions{};
        settings.push_back(s);
        s.name = "maxBranches=20";
        s.tw = TriplewiseOptions{};
        s.tw.maxBranches = 20;
        settings.push_back(s);
        s.name = "latRange=8";
        s.tw = TriplewiseOptions{};
        s.tw.maxLatRange = 8;
        settings.push_back(s);
        s.name = "latRange=48";
        s.tw = TriplewiseOptions{};
        s.tw.maxLatRange = 48;
        settings.push_back(s);
        s.name = "maxEvals=2000";
        s.tw = TriplewiseOptions{};
        s.tw.maxEvals = 2000;
        settings.push_back(s);
    }

    TextTable table;
    table.setHeader({"setting", "TW > PW", "avg gap closed",
                     "fell back", "avg trips"});
    // The >= 3-branch population, in suite order.
    std::vector<const Superblock *> eligibleSbs;
    for (const BenchmarkProgram &prog : suite)
        for (const Superblock &sb : prog.superblocks)
            if (sb.numBranches() >= 3)
                eligibleSbs.push_back(&sb);

    for (const Setting &setting : settings) {
        struct TwSlot
        {
            double trips = 0.0;
            bool fellBack = false;
            bool improved = false;
            double gainPercent = 0.0;
        };
        std::vector<TwSlot> slots(eligibleSbs.size());
        parallelFor(
            eligibleSbs.size(),
            [&](std::size_t i) {
                const Superblock &sb = *eligibleSbs[i];
                GraphContext ctx(sb);
                auto earlyRC = lcEarlyRCForSuperblock(ctx, machine);
                std::vector<std::vector<int>> lateRCs;
                for (int bi = 0; bi < sb.numBranches(); ++bi) {
                    lateRCs.push_back(
                        lateRCFor(ctx, machine, bi, earlyRC));
                }
                PairwiseBounds pw(ctx, machine, earlyRC, lateRCs);
                BoundCounters counters;
                TriplewiseResult tw =
                    computeTriplewise(ctx, machine, earlyRC, lateRCs,
                                      pw, setting.tw, &counters);
                slots[i].trips = double(counters.trips);
                if (tw.fellBack) {
                    slots[i].fellBack = true;
                    return;
                }
                double pwWct = pw.superblockWct();
                if (tw.wct > pwWct + 1e-9) {
                    slots[i].improved = true;
                    slots[i].gainPercent =
                        (tw.wct - pwWct) / pwWct * 100.0;
                }
            },
            opts.threads);

        int improved = 0;
        int fellBack = 0;
        int eligible = int(eligibleSbs.size());
        RunningStat gain;
        SampleStat trips;
        for (const TwSlot &slot : slots) {
            trips.add(slot.trips);
            if (slot.fellBack)
                ++fellBack;
            if (slot.improved) {
                ++improved;
                gain.add(slot.gainPercent);
            }
        }
        table.addRow({setting.name,
                      fmtPercent(100.0 * improved /
                                 std::max(1, eligible)),
                      fmtPercent(gain.mean(), 3),
                      fmtPercent(100.0 * fellBack /
                                 std::max(1, eligible)),
                      fmtCount((long long)(trips.mean() + 0.5))});
    }
    std::cout << table.render() << "\n";
    std::cout << "reading: the default budget captures nearly all of\n"
              << "the achievable TW improvement; tighter caps trade\n"
              << "small amounts of tightness for large cost savings.\n";
    return 0;
}
