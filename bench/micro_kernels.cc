/**
 * @file
 * google-benchmark microbenchmarks for the hot kernels: the Rim &
 * Jain relaxation, the Langevin & Cerny bound (with and without
 * Theorem 1), LateRC, the pairwise bound, the generic list
 * scheduler, and the Help/Balance engines. These back the empirical
 * complexity discussion around Tables 2 and 6 with wall-clock data.
 */

#include <benchmark/benchmark.h>

#include "bounds/bound_scratch.hh"
#include "bounds/reference.hh"
#include "bounds/superblock_bounds.hh"
#include "core/balance_scheduler.hh"
#include "sched/priorities.hh"
#include "support/simd_kernels.hh"
#include "workload/generator.hh"

using namespace balance;

namespace
{

/** One representative superblock of roughly the requested size. */
Superblock
sampleSuperblock(int targetOps)
{
    GeneratorParams params;
    params.blockGeoP = 0.35;
    params.opsPerBlockMu = 1.8;
    Rng rng(std::uint64_t(targetOps) * 77 + 5);
    // Draw until close enough; deterministic for a target.
    for (int i = 0; i < 200; ++i) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params, "bench");
        if (sb.numOps() >= targetOps / 2 &&
            sb.numOps() <= targetOps * 2) {
            return sb;
        }
    }
    Rng child = rng.fork();
    return generateSuperblock(child, params, "bench");
}

void
BM_RimJainBound(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    for (auto _ : state)
        benchmark::DoNotOptimize(rjEarly(ctx, m));
    state.SetLabel(std::to_string(sb.numOps()) + " ops");
}

void
BM_LangevinCerny(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    Dag dag = Dag::fromSuperblock(sb);
    MachineModel m = MachineModel::fs4();
    LcOptions opts;
    opts.useTheorem1 = state.range(1) != 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(lcEarlyRC(dag, m, opts));
    state.SetLabel(std::to_string(sb.numOps()) + " ops, theorem1=" +
                   std::to_string(state.range(1)));
}

void
BM_LateRC(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    for (auto _ : state) {
        for (int bi = 0; bi < sb.numBranches(); ++bi)
            benchmark::DoNotOptimize(lateRCFor(ctx, m, bi, earlyRC));
    }
}

void
BM_PairwiseBounds(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    std::vector<std::vector<int>> lateRCs;
    for (int bi = 0; bi < sb.numBranches(); ++bi)
        lateRCs.push_back(lateRCFor(ctx, m, bi, earlyRC));
    for (auto _ : state) {
        PairwiseBounds pw(ctx, m, earlyRC, lateRCs);
        benchmark::DoNotOptimize(pw.superblockWct());
    }
}

// Before/after pair for the bound-engine overhaul: the frozen naive
// sweep (fresh vectors, full sort per step) against the scratch-arena
// engine on the same superblock. Same shape for the full WCT stack,
// which the triplewise enumeration dominates.
void
BM_PairwiseBoundsNaive(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    std::vector<std::vector<int>> lateRCs;
    for (int bi = 0; bi < sb.numBranches(); ++bi)
        lateRCs.push_back(lateRCFor(ctx, m, bi, earlyRC));
    for (auto _ : state) {
        auto pw = reference::pairwiseBounds(ctx, m, earlyRC, lateRCs);
        benchmark::DoNotOptimize(pw.wct);
    }
}

void
BM_PairwiseBoundsEngine(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    std::vector<std::vector<int>> lateRCs;
    for (int bi = 0; bi < sb.numBranches(); ++bi)
        lateRCs.push_back(lateRCFor(ctx, m, bi, earlyRC));
    BoundScratch scratch(m);
    for (auto _ : state) {
        PairwiseBounds pw(ctx, m, earlyRC, lateRCs, {}, nullptr,
                          &scratch);
        benchmark::DoNotOptimize(pw.superblockWct());
    }
}

void
BM_WctBoundsNaive(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            reference::computeWctBounds(ctx, m).tightest());
}

void
BM_WctBoundsEngine(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    BoundScratch scratch(m);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            computeWctBounds(ctx, m, {}, nullptr, &scratch)
                .tightest());
}

void
BM_ListScheduler(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto key = criticalPathKey(ctx);
    for (auto _ : state)
        benchmark::DoNotOptimize(listSchedule(sb, m, key));
}

void
BM_HelpScheduler(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    HelpScheduler help;
    for (auto _ : state)
        benchmark::DoNotOptimize(help.run(ctx, m));
}

void
BM_BalanceScheduler(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    BalanceScheduler bal;
    BoundsToolkit toolkit(ctx, m, bal.config().bounds);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            bal.runWithToolkit(ctx, m, toolkit));
}

void
BM_BalanceFullUpdate(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    BalanceConfig cfg;
    cfg.useLightUpdate = false;
    BalanceScheduler bal(cfg, "Balance-full");
    BoundsToolkit toolkit(ctx, m, bal.config().bounds);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            bal.runWithToolkit(ctx, m, toolkit));
}

// ---------------------------------------------------------------
// Scalar-vs-SIMD parity pairs for the kernel dispatch table. Each
// pair runs the exact same synthetic SoA buffers through the scalar
// reference table and the runtime-dispatched table (AVX2/NEON when
// available), so `--benchmark_filter=Kernel` reads as before/after
// columns for the bound-sweep, relaxation, ready-set, and grid-blend
// inner loops. Arg 0 is the element count, arg 1 selects the table
// (0 = scalar reference, 1 = dispatched).

const SimdKernels &
kernelTable(bool dispatched)
{
    return dispatched ? simdKernels() : scalarSimdKernels();
}

/** Deterministic pseudo-random ints without <random> overhead. */
std::vector<int>
kernelInts(std::uint64_t seed, int n, int lo, int hi)
{
    std::vector<int> v(static_cast<std::size_t>(n));
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
    for (int &e : v) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        e = lo + int(x % std::uint64_t(hi - lo + 1));
    }
    return v;
}

std::vector<double>
kernelDoubles(std::uint64_t seed, int n)
{
    std::vector<double> v(static_cast<std::size_t>(n));
    std::uint64_t x = seed * 0x2545f4914f6cdd1dull + 9;
    for (double &e : v) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        e = double(x % 8000) / 1000.0 - 4.0;
    }
    return v;
}

void
BM_KernelPairCompose(benchmark::State &state)
{
    const int n = int(state.range(0));
    const SimdKernels &k = kernelTable(state.range(1) != 0);
    std::vector<int> hSink = kernelInts(1, n, 0, 40);
    std::vector<int> hi = kernelInts(2, n, -1, 40);
    std::vector<int> early = kernelInts(3, n, 0, 30);
    std::vector<int> relLate = kernelInts(4, n, -20, 50);
    std::vector<int> keys(static_cast<std::size_t>(n));
    for (auto _ : state) {
        ComposeResult r = k.pairCompose(hSink.data(), hi.data(),
                                        early.data(), relLate.data(),
                                        keys.data(), n, 2, 11);
        benchmark::DoNotOptimize(r);
        benchmark::DoNotOptimize(keys.data());
    }
    state.SetLabel(k.name);
}

void
BM_KernelTripleCompose(benchmark::State &state)
{
    const int n = int(state.range(0));
    const SimdKernels &k = kernelTable(state.range(1) != 0);
    std::vector<int> hSink = kernelInts(5, n, 0, 40);
    std::vector<int> hi = kernelInts(6, n, -1, 40);
    std::vector<int> hj = kernelInts(7, n, -1, 40);
    std::vector<int> early = kernelInts(8, n, 0, 30);
    std::vector<int> relLate = kernelInts(9, n, -20, 50);
    std::vector<int> keys(static_cast<std::size_t>(n));
    for (auto _ : state) {
        ComposeResult r = k.tripleCompose(
            hSink.data(), hi.data(), hj.data(), early.data(),
            relLate.data(), keys.data(), n, 3, 1, 9);
        benchmark::DoNotOptimize(r);
        benchmark::DoNotOptimize(keys.data());
    }
    state.SetLabel(k.name);
}

void
BM_KernelEpochScan(benchmark::State &state)
{
    // RJ relaxation probe: all cycles full up to the landing slot,
    // the worst case the skip-walk fallback used to pay for.
    const int n = int(state.range(0));
    const SimdKernels &k = kernelTable(state.range(1) != 0);
    const std::uint32_t epoch = 7;
    std::vector<std::uint32_t> stamp(static_cast<std::size_t>(n),
                                     epoch);
    std::vector<int> fill(static_cast<std::size_t>(n), 2);
    fill.back() = 0; // free slot at the very end
    for (auto _ : state)
        benchmark::DoNotOptimize(k.epochScanFirstFree(
            stamp.data(), fill.data(), epoch, 2, n));
    state.SetLabel(k.name);
}

void
BM_KernelMaskLE(benchmark::State &state)
{
    // Ready-bitset promotion scan over the pending readyAt lane.
    const int n = int(state.range(0));
    const SimdKernels &k = kernelTable(state.range(1) != 0);
    std::vector<int> readyAt = kernelInts(10, n, 0, 200);
    std::vector<std::uint64_t> words(std::size_t(n) / 64 + 1);
    for (auto _ : state) {
        k.maskLE(readyAt.data(), 100, words.data(), n);
        benchmark::DoNotOptimize(words.data());
    }
    state.SetLabel(k.name);
}

void
BM_KernelBlendMapKeys(benchmark::State &state)
{
    // Best's 121-point grid: blend three priority lanes and map the
    // result to descending u64 sort keys in one pass.
    const int n = int(state.range(0));
    const SimdKernels &k = kernelTable(state.range(1) != 0);
    std::vector<double> cp = kernelDoubles(11, n);
    std::vector<double> sr = kernelDoubles(12, n);
    std::vector<double> dh = kernelDoubles(13, n);
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
    for (auto _ : state) {
        k.blendMapKeysDesc(0.3, cp.data(), 0.2, sr.data(), 0.5,
                           dh.data(), keys.data(), n);
        benchmark::DoNotOptimize(keys.data());
    }
    state.SetLabel(k.name);
}

BENCHMARK(BM_RimJainBound)->Arg(25)->Arg(100)->Arg(300);
BENCHMARK(BM_LangevinCerny)
    ->Args({25, 1})
    ->Args({25, 0})
    ->Args({100, 1})
    ->Args({100, 0})
    ->Args({300, 1});
BENCHMARK(BM_LateRC)->Arg(25)->Arg(100);
BENCHMARK(BM_PairwiseBounds)->Arg(25)->Arg(100);
BENCHMARK(BM_PairwiseBoundsNaive)->Arg(25)->Arg(100);
BENCHMARK(BM_PairwiseBoundsEngine)->Arg(25)->Arg(100);
BENCHMARK(BM_WctBoundsNaive)->Arg(25)->Arg(100);
BENCHMARK(BM_WctBoundsEngine)->Arg(25)->Arg(100);
BENCHMARK(BM_ListScheduler)->Arg(25)->Arg(100)->Arg(300);
BENCHMARK(BM_HelpScheduler)->Arg(25)->Arg(100);
BENCHMARK(BM_BalanceScheduler)->Arg(25)->Arg(100);
BENCHMARK(BM_BalanceFullUpdate)->Arg(25)->Arg(100);
BENCHMARK(BM_KernelPairCompose)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});
BENCHMARK(BM_KernelTripleCompose)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});
BENCHMARK(BM_KernelEpochScan)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});
BENCHMARK(BM_KernelMaskLE)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});
BENCHMARK(BM_KernelBlendMapKeys)
    ->Args({121, 0})
    ->Args({121, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});

} // namespace

BENCHMARK_MAIN();
