/**
 * @file
 * google-benchmark microbenchmarks for the hot kernels: the Rim &
 * Jain relaxation, the Langevin & Cerny bound (with and without
 * Theorem 1), LateRC, the pairwise bound, the generic list
 * scheduler, and the Help/Balance engines. These back the empirical
 * complexity discussion around Tables 2 and 6 with wall-clock data.
 *
 * Besides the console output, every run writes a BENCH_micro.json
 * artifact (--out overrides the path) with per-benchmark ns/op so
 * the kernel-level trajectory is trackable across commits like the
 * other BENCH_ files. On machines with perf_event access the SIMD
 * kernel benches also attach hardware-counter columns (cycles/op,
 * IPC, branch/cache miss rates) via PerfSampler
 * (docs/OBSERVABILITY.md); without it the wall-clock columns stand
 * alone (BALANCE_PERF=fallback forces that).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bounds/bound_scratch.hh"
#include "bounds/reference.hh"
#include "bounds/superblock_bounds.hh"
#include "core/balance_scheduler.hh"
#include "sched/priorities.hh"
#include "support/json.hh"
#include "support/perf_counters.hh"
#include "support/simd_kernels.hh"
#include "workload/generator.hh"

using namespace balance;

namespace
{

/** The bench's one counter group (benchmarks run single-threaded). */
PerfSampler &
benchSampler()
{
    static PerfSampler *s = new PerfSampler();
    return *s;
}

/**
 * RAII hardware-counter columns for one benchmark run: construct
 * immediately before the `for (auto _ : state)` loop (in its own
 * scope), and the destructor divides the covered interval's counter
 * deltas across the iterations into state.counters. No columns are
 * attached at the fallback tier — absent columns read honestly as
 * "not measured", where zeros would read as impossibly good.
 */
class KernelCounters
{
  public:
    explicit KernelCounters(benchmark::State &state) : st(state)
    {
        start = benchSampler().now();
    }

    ~KernelCounters()
    {
        PerfCounterValues end = benchSampler().now();
        if (benchSampler().tier() != PerfTier::Hardware ||
            st.iterations() == 0)
            return;
        PerfCounterValues d = PerfCounterValues::delta(end, start);
        double iters = double(st.iterations());
        st.counters["cycles_per_op"] =
            benchmark::Counter(double(d.cycles) / iters);
        st.counters["instructions_per_op"] =
            benchmark::Counter(double(d.instructions) / iters);
        st.counters["ipc"] = benchmark::Counter(
            d.cycles ? double(d.instructions) / double(d.cycles) : 0.0);
        st.counters["branch_miss_rate"] = benchmark::Counter(
            d.branches ? double(d.branchMisses) / double(d.branches)
                       : 0.0);
        st.counters["cache_miss_rate"] = benchmark::Counter(
            d.cacheReferences
                ? double(d.cacheMisses) / double(d.cacheReferences)
                : 0.0);
    }

  private:
    benchmark::State &st;
    PerfCounterValues start;
};

/** One representative superblock of roughly the requested size. */
Superblock
sampleSuperblock(int targetOps)
{
    GeneratorParams params;
    params.blockGeoP = 0.35;
    params.opsPerBlockMu = 1.8;
    Rng rng(std::uint64_t(targetOps) * 77 + 5);
    // Draw until close enough; deterministic for a target.
    for (int i = 0; i < 200; ++i) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params, "bench");
        if (sb.numOps() >= targetOps / 2 &&
            sb.numOps() <= targetOps * 2) {
            return sb;
        }
    }
    Rng child = rng.fork();
    return generateSuperblock(child, params, "bench");
}

void
BM_RimJainBound(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    for (auto _ : state)
        benchmark::DoNotOptimize(rjEarly(ctx, m));
    state.SetLabel(std::to_string(sb.numOps()) + " ops");
}

void
BM_LangevinCerny(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    Dag dag = Dag::fromSuperblock(sb);
    MachineModel m = MachineModel::fs4();
    LcOptions opts;
    opts.useTheorem1 = state.range(1) != 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(lcEarlyRC(dag, m, opts));
    state.SetLabel(std::to_string(sb.numOps()) + " ops, theorem1=" +
                   std::to_string(state.range(1)));
}

void
BM_LateRC(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    for (auto _ : state) {
        for (int bi = 0; bi < sb.numBranches(); ++bi)
            benchmark::DoNotOptimize(lateRCFor(ctx, m, bi, earlyRC));
    }
}

void
BM_PairwiseBounds(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    std::vector<std::vector<int>> lateRCs;
    for (int bi = 0; bi < sb.numBranches(); ++bi)
        lateRCs.push_back(lateRCFor(ctx, m, bi, earlyRC));
    for (auto _ : state) {
        PairwiseBounds pw(ctx, m, earlyRC, lateRCs);
        benchmark::DoNotOptimize(pw.superblockWct());
    }
}

// Before/after pair for the bound-engine overhaul: the frozen naive
// sweep (fresh vectors, full sort per step) against the scratch-arena
// engine on the same superblock. Same shape for the full WCT stack,
// which the triplewise enumeration dominates.
void
BM_PairwiseBoundsNaive(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    std::vector<std::vector<int>> lateRCs;
    for (int bi = 0; bi < sb.numBranches(); ++bi)
        lateRCs.push_back(lateRCFor(ctx, m, bi, earlyRC));
    for (auto _ : state) {
        auto pw = reference::pairwiseBounds(ctx, m, earlyRC, lateRCs);
        benchmark::DoNotOptimize(pw.wct);
    }
}

void
BM_PairwiseBoundsEngine(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    std::vector<std::vector<int>> lateRCs;
    for (int bi = 0; bi < sb.numBranches(); ++bi)
        lateRCs.push_back(lateRCFor(ctx, m, bi, earlyRC));
    BoundScratch scratch(m);
    for (auto _ : state) {
        PairwiseBounds pw(ctx, m, earlyRC, lateRCs, {}, nullptr,
                          &scratch);
        benchmark::DoNotOptimize(pw.superblockWct());
    }
}

void
BM_WctBoundsNaive(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            reference::computeWctBounds(ctx, m).tightest());
}

void
BM_WctBoundsEngine(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    BoundScratch scratch(m);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            computeWctBounds(ctx, m, {}, nullptr, &scratch)
                .tightest());
}

void
BM_ListScheduler(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto key = criticalPathKey(ctx);
    for (auto _ : state)
        benchmark::DoNotOptimize(listSchedule(sb, m, key));
}

void
BM_HelpScheduler(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    HelpScheduler help;
    for (auto _ : state)
        benchmark::DoNotOptimize(help.run(ctx, m));
}

void
BM_BalanceScheduler(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    BalanceScheduler bal;
    BoundsToolkit toolkit(ctx, m, bal.config().bounds);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            bal.runWithToolkit(ctx, m, toolkit));
}

void
BM_BalanceFullUpdate(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    BalanceConfig cfg;
    cfg.useLightUpdate = false;
    BalanceScheduler bal(cfg, "Balance-full");
    BoundsToolkit toolkit(ctx, m, bal.config().bounds);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            bal.runWithToolkit(ctx, m, toolkit));
}

// ---------------------------------------------------------------
// Scalar-vs-SIMD parity pairs for the kernel dispatch table. Each
// pair runs the exact same synthetic SoA buffers through the scalar
// reference table and the runtime-dispatched table (AVX2/NEON when
// available), so `--benchmark_filter=Kernel` reads as before/after
// columns for the bound-sweep, relaxation, ready-set, and grid-blend
// inner loops. Arg 0 is the element count, arg 1 selects the table
// (0 = scalar reference, 1 = dispatched).

const SimdKernels &
kernelTable(bool dispatched)
{
    return dispatched ? simdKernels() : scalarSimdKernels();
}

/** Deterministic pseudo-random ints without <random> overhead. */
std::vector<int>
kernelInts(std::uint64_t seed, int n, int lo, int hi)
{
    std::vector<int> v(static_cast<std::size_t>(n));
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
    for (int &e : v) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        e = lo + int(x % std::uint64_t(hi - lo + 1));
    }
    return v;
}

std::vector<double>
kernelDoubles(std::uint64_t seed, int n)
{
    std::vector<double> v(static_cast<std::size_t>(n));
    std::uint64_t x = seed * 0x2545f4914f6cdd1dull + 9;
    for (double &e : v) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        e = double(x % 8000) / 1000.0 - 4.0;
    }
    return v;
}

void
BM_KernelPairCompose(benchmark::State &state)
{
    const int n = int(state.range(0));
    const SimdKernels &k = kernelTable(state.range(1) != 0);
    std::vector<int> hSink = kernelInts(1, n, 0, 40);
    std::vector<int> hi = kernelInts(2, n, -1, 40);
    std::vector<int> early = kernelInts(3, n, 0, 30);
    std::vector<int> relLate = kernelInts(4, n, -20, 50);
    std::vector<int> keys(static_cast<std::size_t>(n));
    {
        KernelCounters kc(state);
        for (auto _ : state) {
            ComposeResult r = k.pairCompose(
                hSink.data(), hi.data(), early.data(), relLate.data(),
                keys.data(), n, 2, 11);
            benchmark::DoNotOptimize(r);
            benchmark::DoNotOptimize(keys.data());
        }
    }
    state.SetLabel(k.name);
}

void
BM_KernelTripleCompose(benchmark::State &state)
{
    const int n = int(state.range(0));
    const SimdKernels &k = kernelTable(state.range(1) != 0);
    std::vector<int> hSink = kernelInts(5, n, 0, 40);
    std::vector<int> hi = kernelInts(6, n, -1, 40);
    std::vector<int> hj = kernelInts(7, n, -1, 40);
    std::vector<int> early = kernelInts(8, n, 0, 30);
    std::vector<int> relLate = kernelInts(9, n, -20, 50);
    std::vector<int> keys(static_cast<std::size_t>(n));
    {
        KernelCounters kc(state);
        for (auto _ : state) {
            ComposeResult r = k.tripleCompose(
                hSink.data(), hi.data(), hj.data(), early.data(),
                relLate.data(), keys.data(), n, 3, 1, 9);
            benchmark::DoNotOptimize(r);
            benchmark::DoNotOptimize(keys.data());
        }
    }
    state.SetLabel(k.name);
}

void
BM_KernelEpochScan(benchmark::State &state)
{
    // RJ relaxation probe: all cycles full up to the landing slot,
    // the worst case the skip-walk fallback used to pay for.
    const int n = int(state.range(0));
    const SimdKernels &k = kernelTable(state.range(1) != 0);
    const std::uint32_t epoch = 7;
    std::vector<std::uint32_t> stamp(static_cast<std::size_t>(n),
                                     epoch);
    std::vector<int> fill(static_cast<std::size_t>(n), 2);
    fill.back() = 0; // free slot at the very end
    {
        KernelCounters kc(state);
        for (auto _ : state)
            benchmark::DoNotOptimize(k.epochScanFirstFree(
                stamp.data(), fill.data(), epoch, 2, n));
    }
    state.SetLabel(k.name);
}

void
BM_KernelMaskLE(benchmark::State &state)
{
    // Ready-bitset promotion scan over the pending readyAt lane.
    const int n = int(state.range(0));
    const SimdKernels &k = kernelTable(state.range(1) != 0);
    std::vector<int> readyAt = kernelInts(10, n, 0, 200);
    std::vector<std::uint64_t> words(std::size_t(n) / 64 + 1);
    {
        KernelCounters kc(state);
        for (auto _ : state) {
            k.maskLE(readyAt.data(), 100, words.data(), n);
            benchmark::DoNotOptimize(words.data());
        }
    }
    state.SetLabel(k.name);
}

void
BM_KernelBlendMapKeys(benchmark::State &state)
{
    // Best's 121-point grid: blend three priority lanes and map the
    // result to descending u64 sort keys in one pass.
    const int n = int(state.range(0));
    const SimdKernels &k = kernelTable(state.range(1) != 0);
    std::vector<double> cp = kernelDoubles(11, n);
    std::vector<double> sr = kernelDoubles(12, n);
    std::vector<double> dh = kernelDoubles(13, n);
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
    {
        KernelCounters kc(state);
        for (auto _ : state) {
            k.blendMapKeysDesc(0.3, cp.data(), 0.2, sr.data(), 0.5,
                               dh.data(), keys.data(), n);
            benchmark::DoNotOptimize(keys.data());
        }
    }
    state.SetLabel(k.name);
}

BENCHMARK(BM_RimJainBound)->Arg(25)->Arg(100)->Arg(300);
BENCHMARK(BM_LangevinCerny)
    ->Args({25, 1})
    ->Args({25, 0})
    ->Args({100, 1})
    ->Args({100, 0})
    ->Args({300, 1});
BENCHMARK(BM_LateRC)->Arg(25)->Arg(100);
BENCHMARK(BM_PairwiseBounds)->Arg(25)->Arg(100);
BENCHMARK(BM_PairwiseBoundsNaive)->Arg(25)->Arg(100);
BENCHMARK(BM_PairwiseBoundsEngine)->Arg(25)->Arg(100);
BENCHMARK(BM_WctBoundsNaive)->Arg(25)->Arg(100);
BENCHMARK(BM_WctBoundsEngine)->Arg(25)->Arg(100);
BENCHMARK(BM_ListScheduler)->Arg(25)->Arg(100)->Arg(300);
BENCHMARK(BM_HelpScheduler)->Arg(25)->Arg(100);
BENCHMARK(BM_BalanceScheduler)->Arg(25)->Arg(100);
BENCHMARK(BM_BalanceFullUpdate)->Arg(25)->Arg(100);
BENCHMARK(BM_KernelPairCompose)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});
BENCHMARK(BM_KernelTripleCompose)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});
BENCHMARK(BM_KernelEpochScan)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});
BENCHMARK(BM_KernelMaskLE)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});
BENCHMARK(BM_KernelBlendMapKeys)
    ->Args({121, 0})
    ->Args({121, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});

/** One captured benchmark row destined for BENCH_micro.json. */
struct MicroRow {
    std::string name;
    long long iterations = 0;
    double nsPerOp = 0.0;
    std::string label;
    std::vector<std::pair<std::string, double>> counters;
};

/**
 * Console reporter that additionally records every iteration run so
 * main() can serialize the artifact after RunSpecifiedBenchmarks.
 * Aggregate rows (mean/stddev under --benchmark_repetitions) are
 * skipped: the artifact tracks the plain per-benchmark timings.
 */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.error_occurred ||
                r.run_type != Run::RT_Iteration)
                continue;
            MicroRow row;
            row.name = r.benchmark_name();
            row.iterations = (long long)(r.iterations);
            row.nsPerOp =
                r.iterations
                    ? r.real_accumulated_time /
                          double(r.iterations) * 1e9
                    : 0.0;
            row.label = r.report_label;
            for (const auto &[cname, c] : r.counters)
                row.counters.emplace_back(cname, double(c.value));
            rows.push_back(std::move(row));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::vector<MicroRow> rows;
};

void
writeMicroArtifact(const std::string &path,
                   const std::vector<MicroRow> &rows)
{
    JsonWriter w;
    w.beginObject();
    w.key("bench").value("micro_kernels");
    w.key("tier").value(perfTierName(benchSampler().tier()));
    w.key("kernels").beginArray();
    for (const MicroRow &row : rows) {
        w.beginObject();
        w.key("name").value(row.name);
        w.key("iterations").value(row.iterations);
        w.key("ns_per_op").value(row.nsPerOp);
        if (!row.label.empty())
            w.key("label").value(row.label);
        w.key("counters").beginObject();
        for (const auto &[cname, v] : row.counters)
            w.key(cname).value(v);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::string doc = w.str();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "micro_kernels: cannot open %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "%s\n", doc.c_str());
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off our own --out flag before google-benchmark sees the
    // argument vector; everything else flows through untouched.
    std::string outPath = "BENCH_micro.json";
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            outPath = argv[i] + 6;
        } else {
            args.push_back(argv[i]);
        }
    }
    int filteredArgc = int(args.size());
    benchmark::Initialize(&filteredArgc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filteredArgc,
                                               args.data()))
        return 1;
    JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    writeMicroArtifact(outPath, reporter.rows);
    return 0;
}
