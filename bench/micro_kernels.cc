/**
 * @file
 * google-benchmark microbenchmarks for the hot kernels: the Rim &
 * Jain relaxation, the Langevin & Cerny bound (with and without
 * Theorem 1), LateRC, the pairwise bound, the generic list
 * scheduler, and the Help/Balance engines. These back the empirical
 * complexity discussion around Tables 2 and 6 with wall-clock data.
 */

#include <benchmark/benchmark.h>

#include "bounds/bound_scratch.hh"
#include "bounds/reference.hh"
#include "bounds/superblock_bounds.hh"
#include "core/balance_scheduler.hh"
#include "sched/priorities.hh"
#include "workload/generator.hh"

using namespace balance;

namespace
{

/** One representative superblock of roughly the requested size. */
Superblock
sampleSuperblock(int targetOps)
{
    GeneratorParams params;
    params.blockGeoP = 0.35;
    params.opsPerBlockMu = 1.8;
    Rng rng(std::uint64_t(targetOps) * 77 + 5);
    // Draw until close enough; deterministic for a target.
    for (int i = 0; i < 200; ++i) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params, "bench");
        if (sb.numOps() >= targetOps / 2 &&
            sb.numOps() <= targetOps * 2) {
            return sb;
        }
    }
    Rng child = rng.fork();
    return generateSuperblock(child, params, "bench");
}

void
BM_RimJainBound(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    for (auto _ : state)
        benchmark::DoNotOptimize(rjEarly(ctx, m));
    state.SetLabel(std::to_string(sb.numOps()) + " ops");
}

void
BM_LangevinCerny(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    Dag dag = Dag::fromSuperblock(sb);
    MachineModel m = MachineModel::fs4();
    LcOptions opts;
    opts.useTheorem1 = state.range(1) != 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(lcEarlyRC(dag, m, opts));
    state.SetLabel(std::to_string(sb.numOps()) + " ops, theorem1=" +
                   std::to_string(state.range(1)));
}

void
BM_LateRC(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    for (auto _ : state) {
        for (int bi = 0; bi < sb.numBranches(); ++bi)
            benchmark::DoNotOptimize(lateRCFor(ctx, m, bi, earlyRC));
    }
}

void
BM_PairwiseBounds(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    std::vector<std::vector<int>> lateRCs;
    for (int bi = 0; bi < sb.numBranches(); ++bi)
        lateRCs.push_back(lateRCFor(ctx, m, bi, earlyRC));
    for (auto _ : state) {
        PairwiseBounds pw(ctx, m, earlyRC, lateRCs);
        benchmark::DoNotOptimize(pw.superblockWct());
    }
}

// Before/after pair for the bound-engine overhaul: the frozen naive
// sweep (fresh vectors, full sort per step) against the scratch-arena
// engine on the same superblock. Same shape for the full WCT stack,
// which the triplewise enumeration dominates.
void
BM_PairwiseBoundsNaive(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    std::vector<std::vector<int>> lateRCs;
    for (int bi = 0; bi < sb.numBranches(); ++bi)
        lateRCs.push_back(lateRCFor(ctx, m, bi, earlyRC));
    for (auto _ : state) {
        auto pw = reference::pairwiseBounds(ctx, m, earlyRC, lateRCs);
        benchmark::DoNotOptimize(pw.wct);
    }
}

void
BM_PairwiseBoundsEngine(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    std::vector<std::vector<int>> lateRCs;
    for (int bi = 0; bi < sb.numBranches(); ++bi)
        lateRCs.push_back(lateRCFor(ctx, m, bi, earlyRC));
    BoundScratch scratch(m);
    for (auto _ : state) {
        PairwiseBounds pw(ctx, m, earlyRC, lateRCs, {}, nullptr,
                          &scratch);
        benchmark::DoNotOptimize(pw.superblockWct());
    }
}

void
BM_WctBoundsNaive(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            reference::computeWctBounds(ctx, m).tightest());
}

void
BM_WctBoundsEngine(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    BoundScratch scratch(m);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            computeWctBounds(ctx, m, {}, nullptr, &scratch)
                .tightest());
}

void
BM_ListScheduler(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto key = criticalPathKey(ctx);
    for (auto _ : state)
        benchmark::DoNotOptimize(listSchedule(sb, m, key));
}

void
BM_HelpScheduler(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    HelpScheduler help;
    for (auto _ : state)
        benchmark::DoNotOptimize(help.run(ctx, m));
}

void
BM_BalanceScheduler(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    BalanceScheduler bal;
    BoundsToolkit toolkit(ctx, m, bal.config().bounds);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            bal.runWithToolkit(ctx, m, toolkit));
}

void
BM_BalanceFullUpdate(benchmark::State &state)
{
    Superblock sb = sampleSuperblock(int(state.range(0)));
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    BalanceConfig cfg;
    cfg.useLightUpdate = false;
    BalanceScheduler bal(cfg, "Balance-full");
    BoundsToolkit toolkit(ctx, m, bal.config().bounds);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            bal.runWithToolkit(ctx, m, toolkit));
}

BENCHMARK(BM_RimJainBound)->Arg(25)->Arg(100)->Arg(300);
BENCHMARK(BM_LangevinCerny)
    ->Args({25, 1})
    ->Args({25, 0})
    ->Args({100, 1})
    ->Args({100, 0})
    ->Args({300, 1});
BENCHMARK(BM_LateRC)->Arg(25)->Arg(100);
BENCHMARK(BM_PairwiseBounds)->Arg(25)->Arg(100);
BENCHMARK(BM_PairwiseBoundsNaive)->Arg(25)->Arg(100);
BENCHMARK(BM_PairwiseBoundsEngine)->Arg(25)->Arg(100);
BENCHMARK(BM_WctBoundsNaive)->Arg(25)->Arg(100);
BENCHMARK(BM_WctBoundsEngine)->Arg(25)->Arg(100);
BENCHMARK(BM_ListScheduler)->Arg(25)->Arg(100)->Arg(300);
BENCHMARK(BM_HelpScheduler)->Arg(25)->Arg(100);
BENCHMARK(BM_BalanceScheduler)->Arg(25)->Arg(100);
BENCHMARK(BM_BalanceFullUpdate)->Arg(25)->Arg(100);

} // namespace

BENCHMARK_MAIN();
