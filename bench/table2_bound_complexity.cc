/**
 * @file
 * Reproduces Table 2: computational cost of each bound algorithm as
 * the per-superblock sum of inner-loop trip counts (average and
 * median over the population), including the LC-original row (no
 * Theorem 1 shortcut) and the LC-reverse row (LateRC).
 *
 *   ./table2_bound_complexity [--scale f] [--seed s] [--config M]...
 *                             [--check-threads]
 *
 * --check-threads additionally recomputes every row serially and
 * with 8 workers and fails unless the trip counts are identical:
 * the Table 2 accounting must not depend on work partitioning.
 */

#include <iostream>
#include <string_view>
#include <vector>

#include "eval/bench_options.hh"
#include "eval/bounds_eval.hh"
#include "support/table.hh"

using namespace balance;

namespace
{

/** @return 0 when --threads 1 and --threads 8 rows agree exactly. */
int
checkThreadParity(const std::vector<BenchmarkProgram> &suite,
                  const std::vector<MachineModel> &machines)
{
    int failures = 0;
    for (const MachineModel &machine : machines) {
        auto serial = evaluateBoundCost(suite, machine, {}, 1);
        auto parallel = evaluateBoundCost(suite, machine, {}, 8);
        for (std::size_t i = 0; i < serial.size(); ++i) {
            // Exact comparison: counters are integer sums reduced in
            // suite order, so any thread count must reproduce the
            // serial bytes.
            if (serial[i].averageTrips != parallel[i].averageTrips ||
                serial[i].medianTrips != parallel[i].medianTrips) {
                std::cerr << "thread parity FAILED: "
                          << machine.name() << " " << serial[i].name
                          << " avg " << serial[i].averageTrips
                          << " vs " << parallel[i].averageTrips
                          << ", median " << serial[i].medianTrips
                          << " vs " << parallel[i].medianTrips << "\n";
                ++failures;
            }
        }
    }
    if (failures == 0)
        std::cout << "thread parity OK: --threads 1 and --threads 8 "
                     "trip counts identical\n";
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool checkThreads = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--check-threads")
            checkThreads = true;
        else
            args.push_back(argv[i]);
    }
    BenchOptions opts = parseBenchOptions(int(args.size()),
                                          args.data(), /*scale=*/0.25);
    auto suite = opts.buildSuitePopulation();
    if (checkThreads)
        return checkThreadParity(suite, opts.machines);
    std::cout << "Table 2: bound algorithm cost (loop trips per "
                 "superblock)\n"
              << "suite: " << suiteSize(suite) << " superblocks (scale "
              << opts.suite.scale << ")\n\n";

    for (const MachineModel &machine : opts.machines) {
        auto rows = evaluateBoundCost(suite, machine, {},
                                     opts.threads);
        // Worst-case complexity expressions from the paper's Table 2
        // (V ops, E edges, C cycles, B branches, R resource types).
        const char *worstCase[8] = {
            "B(V+E)",        // CP
            "B(V+E+CR)",     // Hu
            "B(V+E+cCP)",    // RJ
            "V(V/3+E+cCP)",  // LC (with Theorem 1)
            "V(V+E+cCP)",    // LC-original
            "B*V(V+E+cCP)",  // LC-reverse
            "B^2*C(V+E+C)",  // PW
            "B^3*C^2(V+E+C)" // TW
        };
        TextTable table;
        table.setHeader({"algorithm", "worst case", "average",
                         "median"});
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto &r = rows[i];
            table.addRow({r.name, worstCase[i],
                          fmtCount((long long)(r.averageTrips + 0.5)),
                          fmtCount((long long)(r.medianTrips + 0.5))});
        }
        std::cout << machine.name() << "\n" << table.render() << "\n";
    }

    std::cout
        << "expected shape (paper): LC modestly above RJ thanks to\n"
        << "Theorem 1 (LC-original roughly doubles it); LC-reverse\n"
        << "several times LC; PW ~2 orders of magnitude above the\n"
        << "RC-style bounds and TW ~3 (on average; medians stay small\n"
        << "because most superblocks have few branches).\n";
    return 0;
}
