/**
 * @file
 * Reproduces Table 2: computational cost of each bound algorithm as
 * the per-superblock sum of inner-loop trip counts (average and
 * median over the population), including the LC-original row (no
 * Theorem 1 shortcut) and the LC-reverse row (LateRC).
 *
 *   ./table2_bound_complexity [--scale f] [--seed s] [--config M]...
 */

#include <iostream>

#include "eval/bench_options.hh"
#include "eval/bounds_eval.hh"
#include "support/table.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, /*scale=*/0.25);
    auto suite = opts.buildSuitePopulation();
    std::cout << "Table 2: bound algorithm cost (loop trips per "
                 "superblock)\n"
              << "suite: " << suiteSize(suite) << " superblocks (scale "
              << opts.suite.scale << ")\n\n";

    for (const MachineModel &machine : opts.machines) {
        auto rows = evaluateBoundCost(suite, machine, {},
                                     opts.threads);
        // Worst-case complexity expressions from the paper's Table 2
        // (V ops, E edges, C cycles, B branches, R resource types).
        const char *worstCase[8] = {
            "B(V+E)",        // CP
            "B(V+E+CR)",     // Hu
            "B(V+E+cCP)",    // RJ
            "V(V/3+E+cCP)",  // LC (with Theorem 1)
            "V(V+E+cCP)",    // LC-original
            "B*V(V+E+cCP)",  // LC-reverse
            "B^2*C(V+E+C)",  // PW
            "B^3*C^2(V+E+C)" // TW
        };
        TextTable table;
        table.setHeader({"algorithm", "worst case", "average",
                         "median"});
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto &r = rows[i];
            table.addRow({r.name, worstCase[i],
                          fmtCount((long long)(r.averageTrips + 0.5)),
                          fmtCount((long long)(r.medianTrips + 0.5))});
        }
        std::cout << machine.name() << "\n" << table.render() << "\n";
    }

    std::cout
        << "expected shape (paper): LC modestly above RJ thanks to\n"
        << "Theorem 1 (LC-original roughly doubles it); LC-reverse\n"
        << "several times LC; PW ~2 orders of magnitude above the\n"
        << "RC-style bounds and TW ~3 (on average; medians stay small\n"
        << "because most superblocks have few branches).\n";
    return 0;
}
