/**
 * @file
 * Reproduces Table 3: for each machine configuration, the dynamic
 * lower-bound cycle count, the fraction of those cycles spent in
 * trivial superblocks (optimally scheduled by every heuristic), and
 * each heuristic's slowdown relative to the tightest bound over the
 * nontrivial superblocks; plus the cross-configuration average.
 *
 *   ./table3_slowdown [--scale f] [--seed s] [--config M]...
 */

#include <iostream>

#include "eval/bench_options.hh"
#include "eval/experiment.hh"
#include "support/table.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, /*scale=*/0.25);
    auto suite = opts.buildSuitePopulation();
    HeuristicSet set = HeuristicSet::paperSet();
    auto names = set.names();

    std::cout << "Table 3: slowdown relative to the tightest lower "
                 "bound (dynamic cycles)\n"
              << "suite: " << suiteSize(suite) << " superblocks (scale "
              << opts.suite.scale << ")\n\n";

    TextTable table;
    std::vector<std::string> header = {"config", "bound cycles",
                                       "trivial"};
    for (const auto &n : names)
        header.push_back(n);
    table.setHeader(header);

    std::vector<double> slowdownSum(names.size(), 0.0);
    for (const MachineModel &machine : opts.machines) {
        PopulationMetrics m = evaluatePopulation(
            suite, machine, set, {}, nullptr, opts.threads);
        std::vector<std::string> row = {
            machine.name(),
            fmtCount((long long)(m.boundCycles + 0.5)),
            fmtPercent(100.0 * m.trivialCycleFraction)};
        for (std::size_t h = 0; h < names.size(); ++h) {
            row.push_back(fmtPercent(100.0 * m.nontrivialSlowdown[h]));
            slowdownSum[h] += m.nontrivialSlowdown[h];
        }
        table.addRow(row);
    }
    table.addRule();
    std::vector<std::string> avg = {"Average", "", ""};
    for (std::size_t h = 0; h < names.size(); ++h) {
        avg.push_back(fmtPercent(
            100.0 * slowdownSum[h] / double(opts.machines.size())));
    }
    table.addRow(avg);
    std::cout << table.render() << "\n";

    std::cout
        << "expected shape (paper): SR best at narrow issue and worst\n"
        << "at wide issue, CP the opposite; DHASY strong in between;\n"
        << "Help close to Balance; Balance better than every primary\n"
        << "on every configuration with an average slowdown within a\n"
        << "few hundredths of a percent of Best.\n";
    return 0;
}
