/**
 * @file
 * The run-report tool (docs/REPORTING.md):
 *
 *   report_tool run --out DIR [--scale S] [--seed N] [--config M]...
 *                   [--threads N] [--with-best]
 *       capture an instrumented run into DIR (manifest.json,
 *       metrics.json, superblocks.jsonl, decisions.<machine>.jsonl);
 *
 *   report_tool render MANIFEST [-o FILE] [--top K]
 *       render the Markdown report (stdout when -o is absent);
 *
 *   report_tool compare BASE CURRENT [--budget FILE]
 *       compare two runs' metric snapshots; exits 1 when a budgeted
 *       metric regresses beyond its tolerance, 0 otherwise.
 *
 * Exit codes: 0 success, 1 failure/regression, 2 usage error.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "eval/bench_options.hh"
#include "report/attribution.hh"
#include "report/capture.hh"
#include "report/compare.hh"
#include "report/manifest.hh"
#include "report/render.hh"
#include "support/telemetry.hh"

namespace
{

using namespace balance;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: report_tool run --out DIR [--scale S] [--seed N]\n"
        "                       [--config MACHINE]... [--threads N]\n"
        "                       [--with-best] [--bnb]\n"
        "                       [--bnb-max-nodes N] [--bnb-max-ops N]\n"
        "                       [--hw-counters]\n"
        "                       [--debug-server PORT]\n"
        "                       [--metrics-interval MS]\n"
        "       report_tool render MANIFEST [-o FILE] [--top K]\n"
        "       report_tool compare BASE CURRENT [--budget FILE]\n");
    return 2;
}

/** mkdir -p (POSIX); false on failure. */
bool
makeDirs(const std::string &path)
{
    std::string partial;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        std::size_t slash = path.find('/', pos);
        if (slash == std::string::npos)
            slash = path.size();
        partial = path.substr(0, slash);
        pos = slash + 1;
        if (partial.empty())
            continue;
        if (mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

/** Parse "--flag value"; exits via usage() on a missing value. */
const char *
argValue(int argc, char **argv, int *i)
{
    if (*i + 1 >= argc) {
        std::fprintf(stderr, "report_tool: %s needs a value\n",
                     argv[*i]);
        std::exit(2);
    }
    return argv[++*i];
}

int
cmdRun(int argc, char **argv)
{
    CaptureOptions opts;
    TelemetryOptions telemetry;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out") {
            opts.outDir = argValue(argc, argv, &i);
        } else if (arg == "--scale") {
            const char *text = argValue(argc, argv, &i);
            double v = parseDoubleOption("report_tool", arg, text, 2);
            if (v <= 0.0 || v > 1.0)
                optionError("report_tool", arg, text,
                            "number in (0, 1]", 2);
            opts.suite.scale = v;
        } else if (arg == "--seed") {
            opts.suite.seed = parseUint64Option(
                "report_tool", arg, argValue(argc, argv, &i), 2);
        } else if (arg == "--config") {
            opts.machines.push_back(
                MachineModel::byName(argValue(argc, argv, &i)));
        } else if (arg == "--threads") {
            opts.threads = int(parseIntOption(
                "report_tool", arg, argValue(argc, argv, &i), 0, 4096,
                2));
        } else if (arg == "--with-best") {
            opts.withBest = true;
        } else if (arg == "--bnb") {
            opts.withBnb = true;
        } else if (arg == "--bnb-max-nodes") {
            opts.bnbMaxNodes = parseIntOption(
                "report_tool", arg, argValue(argc, argv, &i), 1,
                2000000000, 2);
        } else if (arg == "--bnb-max-ops") {
            opts.bnbMaxOps = int(parseIntOption(
                "report_tool", arg, argValue(argc, argv, &i), 1, 1024,
                2));
        } else if (arg == "--hw-counters") {
            opts.hwCounters = true;
        } else if (arg == "--debug-server") {
            telemetry.debugServer = argValue(argc, argv, &i);
        } else if (arg == "--metrics-interval") {
            opts.metricsIntervalMs = parseIntOption(
                "report_tool", arg, argValue(argc, argv, &i), 1,
                3600000, 2);
        } else {
            std::fprintf(stderr, "report_tool: unknown option %s\n",
                         argv[i]);
            return usage();
        }
    }
    if (opts.outDir.empty())
        return usage();
    if (!makeDirs(opts.outDir)) {
        std::fprintf(stderr, "report_tool: cannot create %s: %s\n",
                     opts.outDir.c_str(), std::strerror(errno));
        return 1;
    }
    // Starts the diagnostics server when asked and installs the
    // crash handlers + SIGINT flush either way. captureRun owns its
    // own --metrics-interval timeline (it samples the run's local
    // registry), so the interval is not forwarded here.
    initTelemetry(telemetry);
    CaptureResult result = captureRun(opts);
    std::printf("captured %zu machine run(s) -> %s\n",
                result.manifest.machines.size(),
                result.manifestPath.c_str());
    return 0;
}

int
cmdRender(int argc, char **argv)
{
    std::string manifestPath;
    std::string outPath;
    AttributionOptions attrOpts;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-o") {
            outPath = argValue(argc, argv, &i);
        } else if (arg == "--top") {
            attrOpts.topK = int(parseIntOption(
                "report_tool", arg, argValue(argc, argv, &i), 1,
                1000000, 2));
        } else if (manifestPath.empty()) {
            manifestPath = arg;
        } else {
            return usage();
        }
    }
    if (manifestPath.empty())
        return usage();

    RunArtifacts run;
    std::string error;
    if (!loadRunArtifacts(manifestPath, &run, &error)) {
        std::fprintf(stderr, "report_tool: %s\n", error.c_str());
        return 1;
    }
    AttributionReport attr = attributeRun(run, attrOpts);
    std::string report = renderReport(run, attr);
    if (outPath.empty()) {
        std::fputs(report.c_str(), stdout);
    } else if (!writeTextFile(outPath, report, &error)) {
        std::fprintf(stderr, "report_tool: %s\n", error.c_str());
        return 1;
    }
    return 0;
}

int
cmdCompare(int argc, char **argv)
{
    std::string basePath;
    std::string curPath;
    std::string budgetPath;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--budget") {
            budgetPath = argValue(argc, argv, &i);
        } else if (basePath.empty()) {
            basePath = arg;
        } else if (curPath.empty()) {
            curPath = arg;
        } else {
            return usage();
        }
    }
    if (basePath.empty() || curPath.empty())
        return usage();

    std::string error;
    RunArtifacts base;
    RunArtifacts cur;
    if (!loadRunArtifacts(basePath, &base, &error) ||
        !loadRunArtifacts(curPath, &cur, &error)) {
        std::fprintf(stderr, "report_tool: %s\n", error.c_str());
        return 1;
    }

    PerfBudget budget;
    if (!budgetPath.empty()) {
        std::string text;
        if (!readTextFile(budgetPath, &text, &error)) {
            std::fprintf(stderr, "report_tool: %s\n", error.c_str());
            return 1;
        }
        JsonParseResult parsed = parseJson(text);
        if (!parsed.ok()) {
            std::fprintf(stderr, "report_tool: %s: %s\n",
                         budgetPath.c_str(),
                         parsed.error.describe().c_str());
            return 1;
        }
        if (!PerfBudget::fromJson(parsed.value, &budget, &error)) {
            std::fprintf(stderr, "report_tool: %s: %s\n",
                         budgetPath.c_str(), error.c_str());
            return 1;
        }
    } else {
        std::fprintf(stderr,
                     "report_tool: no --budget given; comparison is "
                     "informational only\n");
    }

    CompareResult result = compareRuns(base, cur, budget);
    std::fputs(result.render().c_str(), stdout);
    if (!result.ok) {
        std::fprintf(stderr, "report_tool: budget regression\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2);
    if (cmd == "render")
        return cmdRender(argc - 2, argv + 2);
    if (cmd == "compare")
        return cmdCompare(argc - 2, argv + 2);
    return usage();
}
