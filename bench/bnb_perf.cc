/**
 * @file
 * Branch-and-bound certifier throughput on the paper's target sizes:
 * generated superblocks of 50-100 operations, certified (exact
 * optimum or explicit gap) on all six machine configurations. Emits
 * machine-readable results as JSON (BENCH_bnb.json when run from the
 * repo root): per machine, instance/certified counts, a gap
 * histogram over the certified floors, total nodes expanded, and
 * nodes per second.
 *
 *   ./bnb_perf [--instances n] [--seed s] [--max-nodes n]
 *              [--config M]... [--threads n] [--out path] [--smoke]
 *
 * --smoke shrinks the run to a seconds-scale slice (fewer instances,
 * a small node budget) and is what the perf-labeled ctest target
 * uses; every mode validates the incumbents, the certificate ladder,
 * and the emitted JSON.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bounds/superblock_bounds.hh"
#include "eval/bench_options.hh"
#include "machine/machine_model.hh"
#include "sched/bnb/bnb.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/rng.hh"
#include "support/telemetry.hh"
#include "support/trace.hh"
#include "workload/generator.hh"

using namespace balance;

namespace
{

struct Options
{
    int instances = 50;
    std::uint64_t seed = 0xb2b5eedULL;
    long long maxNodes = 2000000;
    int threads = 0;
    std::vector<MachineModel> machines;
    std::string outPath = "BENCH_bnb.json";
    bool smoke = false;
    TelemetryOptions telemetry;
};

[[noreturn]] void
usage(int code)
{
    std::cout
        << "bnb_perf: branch-and-bound certifier throughput on\n"
        << "50-100-op superblocks\n"
        << "  --instances <n>  instances per machine (default 50)\n"
        << "  --seed <u64>     population master seed\n"
        << "  --max-nodes <n>  node budget per instance\n"
        << "  --config <name>  machine config (repeatable; default\n"
        << "                   all six paper configs)\n"
        << "  --threads <n>    search workers (0 = hardware)\n"
        << "  --out <path>     JSON output (default BENCH_bnb.json)\n"
        << "  --smoke          tiny run; same checks\n"
        << telemetryUsage();
    std::exit(code);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    bool instancesSet = false;
    bool maxNodesSet = false;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--instances") {
            o.instances = int(parseIntOption("bnb_perf", arg, next(),
                                             1, 1000000, 2));
            instancesSet = true;
        } else if (arg == "--seed") {
            o.seed = parseUint64Option("bnb_perf", arg, next(), 2);
        } else if (arg == "--max-nodes") {
            o.maxNodes = parseIntOption("bnb_perf", arg, next(), 1,
                                        2000000000, 2);
            maxNodesSet = true;
        } else if (arg == "--config") {
            o.machines.push_back(MachineModel::byName(next()));
        } else if (arg == "--threads") {
            o.threads = int(parseIntOption("bnb_perf", arg, next(), 0,
                                           4096, 2));
        } else if (arg == "--out") {
            o.outPath = next();
        } else if (arg == "--smoke") {
            o.smoke = true;
        } else if (arg == "--help") {
            usage(0);
        } else if (parseTelemetryFlag(arg, next, o.telemetry)) {
            // handled
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage(2);
        }
    }
    if (o.smoke && !instancesSet)
        o.instances = 6;
    if (o.smoke && !maxNodesSet)
        o.maxNodes = 20000;
    if (o.machines.empty())
        o.machines = MachineModel::paperConfigs();
    initTelemetry(o.telemetry);
    return o;
}

/**
 * Draw a population of 50-100-op superblocks: generate with a shape
 * centered on the target band and keep only instances inside it, so
 * the sizes bench what the eval pipeline certifies by default.
 */
std::vector<Superblock>
buildPopulation(const Options &opts)
{
    GeneratorParams params;
    params.blockGeoP = 0.22;
    params.opsPerBlockMu = 1.7;
    params.opsPerBlockSigma = 0.5;
    params.maxOps = 100;
    params.maxBlocks = 20;

    std::vector<Superblock> out;
    std::size_t stream = 0;
    while (int(out.size()) < opts.instances) {
        Rng rng = Rng::stream(opts.seed, stream++);
        Superblock sb = generateSuperblock(
            rng, params, "bnbperf.sb" + std::to_string(out.size()));
        if (sb.numOps() < 50 || sb.numOps() > 100)
            continue;
        out.push_back(std::move(sb));
    }
    return out;
}

/** Percent-gap histogram; the last bucket is open-ended. */
const std::vector<double> &
gapEdges()
{
    static const std::vector<double> e = {0.0, 0.5, 1.0, 2.0, 5.0};
    return e;
}

struct MachineRun
{
    std::string name;
    int instances = 0;
    int certifiedOptimal = 0; //!< proven (gap closed)
    int exhausted = 0;        //!< search space fully enumerated
    std::vector<long long> gapHistogram;
    double sumGapPercent = 0.0;
    double maxGapPercent = 0.0;
    long long nodes = 0;
    double wallMs = 0.0;
};

MachineRun
runMachine(const std::vector<Superblock> &population,
           const MachineModel &machine, const Options &opts)
{
    TraceSpan span("bnb_perf.machine",
                   (long long)(population.size()));
    MachineRun run;
    run.name = machine.name();
    run.gapHistogram.assign(gapEdges().size() + 1, 0);

    auto t0 = std::chrono::steady_clock::now();
    for (const Superblock &sb : population) {
        GraphContext ctx(sb);
        BoundsToolkit toolkit(ctx, machine);
        WctBounds bounds = computeWctBounds(ctx, machine);

        BnbOptions bnbOpts;
        bnbOpts.maxNodes = opts.maxNodes;
        bnbOpts.threads = opts.threads;
        BnbRequest req;
        req.toolkit = &toolkit;
        req.staticLowerBound = bounds.tightest();
        BnbResult r = bnbSchedule(ctx, machine, bnbOpts, req);

        r.schedule.validate(sb, machine);
        bsAssert(r.lowerBound >= bounds.tightest() - 1e-9 &&
                     r.lowerBound <= r.wct + 1e-9,
                 "bnb_perf: certificate ladder violated on '",
                 sb.name(), "'");

        ++run.instances;
        if (r.proven)
            ++run.certifiedOptimal;
        if (r.exhausted)
            ++run.exhausted;
        run.nodes += r.counters.nodesExpanded;

        double gapPercent = r.lowerBound > 1e-9
            ? r.gap() / r.lowerBound * 100.0
            : 0.0;
        run.sumGapPercent += gapPercent;
        run.maxGapPercent = std::max(run.maxGapPercent, gapPercent);
        const std::vector<double> &edges = gapEdges();
        std::size_t bucket = edges.size();
        for (std::size_t i = 0; i < edges.size(); ++i) {
            if (gapPercent <= edges[i] + 1e-9) {
                bucket = i;
                break;
            }
        }
        ++run.gapHistogram[bucket];
    }
    run.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    std::vector<Superblock> population = buildPopulation(opts);

    std::cout << "bnb_perf: " << population.size()
              << " superblocks of 50-100 ops, node budget "
              << opts.maxNodes << "\n\n";

    JsonWriter w;
    w.beginObject()
        .key("bench").value("bnb_perf")
        .key("instances").value(int(population.size()))
        .key("seed").value((long long)(opts.seed))
        .key("max_nodes").value(opts.maxNodes)
        .key("threads").value(opts.threads)
        .key("smoke").value(opts.smoke)
        .key("gap_edges_percent").beginArray();
    for (double e : gapEdges())
        w.value(e);
    w.endArray();
    w.key("machines").beginArray();

    for (const MachineModel &machine : opts.machines) {
        MachineRun run = runMachine(population, machine, opts);
        double nodesPerSec = run.wallMs > 0.0
            ? double(run.nodes) / (run.wallMs / 1000.0)
            : 0.0;
        double meanGap = run.instances > 0
            ? run.sumGapPercent / run.instances
            : 0.0;
        std::cout << run.name << ": " << run.certifiedOptimal << "/"
                  << run.instances << " proven optimal ("
                  << run.exhausted << " exhausted), mean gap "
                  << meanGap << "%, max " << run.maxGapPercent
                  << "%, " << run.nodes << " nodes in " << run.wallMs
                  << " ms (" << nodesPerSec / 1e6 << " Mnodes/s)\n";
        w.beginObject()
            .key("name").value(run.name)
            .key("instances").value(run.instances)
            .key("certified_optimal").value(run.certifiedOptimal)
            .key("exhausted").value(run.exhausted)
            .key("mean_gap_percent").value(meanGap)
            .key("max_gap_percent").value(run.maxGapPercent)
            .key("gap_histogram").beginArray();
        for (long long c : run.gapHistogram)
            w.value(c);
        w.endArray();
        w.key("nodes_expanded").value(run.nodes)
            .key("wall_ms").value(run.wallMs)
            .key("nodes_per_sec").value(nodesPerSec)
            .endObject();
    }
    w.endArray().endObject();

    bsAssert(jsonLooksValid(w.str()),
             "bnb_perf produced malformed JSON");
    std::ofstream out(opts.outPath);
    bsAssert(out.good(), "cannot open ", opts.outPath);
    out << w.str() << "\n";
    out.close();
    std::cout << "\nwrote " << opts.outPath << "\n";
    return 0;
}
