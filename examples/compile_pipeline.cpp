/**
 * @file
 * End-to-end "compiler" walk-through: generate a profiled CFG
 * region, run liveness, select traces, form superblocks (the
 * IMPACT/LEGO role), schedule each with Critical Path and with
 * Balance, and simulate execution to measure the dynamic-cycle
 * difference the better schedules buy.
 *
 * Run: ./build/examples/compile_pipeline [seed]
 */

#include <cstdlib>
#include <iostream>

#include "cfg/cfg_gen.hh"
#include "cfg/superblock_form.hh"
#include "core/balance_scheduler.hh"
#include "sched/heuristics.hh"
#include "sim/simulator.hh"
#include "support/table.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    std::uint64_t seed = argc > 1
        ? std::uint64_t(std::atoll(argv[1]))
        : 7;
    MachineModel machine = MachineModel::fs4();

    // 1. A profiled CFG region (stands in for a compiled function).
    Rng rng(seed);
    CfgGenParams genParams;
    genParams.minBlocks = 10;
    genParams.maxBlocks = 18;
    genParams.instrsMu = 1.8;
    CfgProgram cfg = generateCfg(rng, genParams);
    std::cout << "region: " << cfg.numBlocks() << " blocks, "
              << cfg.numVRegs() << " virtual registers\n";

    // 2. Traces and superblocks.
    auto sbs = formSuperblocks(cfg, "region");
    std::cout << "formed " << sbs.size() << " superblocks:\n";
    for (const Superblock &sb : sbs) {
        std::cout << "  " << sb.name() << ": " << sb.numOps()
                  << " ops, " << sb.numBranches() << " exits, freq "
                  << fmtDouble(sb.execFrequency(), 1) << "\n";
    }
    std::cout << "\nmachine: " << machine.describe() << "\n\n";

    // 3. Schedule with CP and with Balance; 4. simulate both.
    CriticalPathScheduler cp;
    BalanceScheduler bal;
    std::vector<Schedule> cpSchedules;
    std::vector<Schedule> balSchedules;
    for (const Superblock &sb : sbs) {
        GraphContext ctx(sb);
        cpSchedules.push_back(cp.run(ctx, machine));
        balSchedules.push_back(bal.run(ctx, machine));
        cpSchedules.back().validate(sb, machine);
        balSchedules.back().validate(sb, machine);
    }

    std::vector<ScheduledSuperblock> cpProg;
    std::vector<ScheduledSuperblock> balProg;
    for (std::size_t i = 0; i < sbs.size(); ++i) {
        cpProg.push_back({&sbs[i], &cpSchedules[i]});
        balProg.push_back({&sbs[i], &balSchedules[i]});
    }
    Rng simA(seed * 31 + 1);
    Rng simB(seed * 31 + 1); // identical exit draws for fairness
    ProgramSimResult cpRun = simulateProgram(cpProg, 10.0, simA);
    ProgramSimResult balRun = simulateProgram(balProg, 10.0, simB);

    TextTable table;
    table.setHeader({"scheduler", "simulated cycles",
                     "cycles/traversal"});
    table.addRow({"Critical Path",
                  fmtCount((long long)(cpRun.totalCycles)),
                  fmtDouble(cpRun.totalCycles / cpRun.executions, 3)});
    table.addRow({"Balance",
                  fmtCount((long long)(balRun.totalCycles)),
                  fmtDouble(balRun.totalCycles / balRun.executions,
                            3)});
    std::cout << table.render();
    double speedup = cpRun.totalCycles / balRun.totalCycles;
    std::cout << "\nBalance speedup over Critical Path: "
              << fmtDouble(speedup, 4) << "x over "
              << fmtCount(balRun.executions)
              << " simulated traversals\n";
    return 0;
}
