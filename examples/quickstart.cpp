/**
 * @file
 * Quickstart: build a superblock through the public API, compute
 * the paper's lower bounds, schedule it with each heuristic, and
 * print the schedules.
 *
 * Run: ./build/examples/quickstart
 */

#include <iostream>

#include "bounds/superblock_bounds.hh"
#include "core/balance_scheduler.hh"
#include "eval/experiment.hh"
#include "graph/builder.hh"
#include "support/table.hh"

using namespace balance;

int
main()
{
    // A small superblock: a side exit fed by three independent
    // integer ops, then a loaded value flowing into the final exit.
    SuperblockBuilder b("quickstart");
    OpId a0 = b.addOp(OpClass::IntAlu, 1, "a0");
    OpId a1 = b.addOp(OpClass::IntAlu, 1, "a1");
    OpId a2 = b.addOp(OpClass::IntAlu, 1, "a2");
    OpId side = b.addBranch(0.3, "side");
    b.addEdge(a0, side);
    b.addEdge(a1, side);
    b.addEdge(a2, side);

    OpId ld = b.addOp(OpClass::Memory, Latencies::load, "load");
    OpId add = b.addOp(OpClass::IntAlu, 1, "add");
    OpId fin = b.addBranch(0.7, "final");
    b.addEdge(ld, add); // 2-cycle load latency
    b.addEdge(add, fin);
    Superblock sb = b.build();

    MachineModel machine = MachineModel::gp2();
    std::cout << "machine: " << machine.describe() << "\n\n";

    // Lower bounds (Section 4).
    GraphContext ctx(sb);
    WctBounds bounds = computeWctBounds(ctx, machine);
    TextTable table;
    table.setHeader({"bound", "weighted completion time"});
    table.addRow({"CP (critical path)", fmtDouble(bounds.cp, 3)});
    table.addRow({"Hu", fmtDouble(bounds.hu, 3)});
    table.addRow({"Rim & Jain", fmtDouble(bounds.rj, 3)});
    table.addRow({"Langevin & Cerny", fmtDouble(bounds.lc, 3)});
    table.addRow({"Pairwise", fmtDouble(bounds.pw, 3)});
    table.addRow({"Triplewise", fmtDouble(bounds.tw, 3)});
    table.addRow({"tightest", fmtDouble(bounds.tightest(), 3)});
    std::cout << table.render() << "\n";

    // Schedule with every heuristic (Section 6.2 lineup).
    HeuristicSet set = HeuristicSet::paperSet(/*withBest=*/false);
    for (const auto &sched : set.primaries) {
        Schedule s = sched->run(ctx, machine);
        s.validate(sb, machine);
        std::cout << sched->name() << ": wct "
                  << fmtDouble(s.wct(sb), 3) << "\n";
    }
    std::cout << "\n";

    // The Balance schedule in detail.
    BalanceScheduler bal;
    Schedule s = bal.run(ctx, machine);
    std::cout << s.render(sb, machine);
    return 0;
}
