/**
 * @file
 * Command-line superblock tool over the .sb interchange format:
 *
 *   sb_tool gen <count> <file.sb> [seed]    generate a population
 *   sb_tool suite <scale> <file.sb> [seed]  export the SPECint95-like
 *                                           suite (scale in (0,1])
 *   sb_tool info <file.sb>                  summarize superblocks
 *   sb_tool bounds <file.sb> <machine>      print all lower bounds
 *   sb_tool sched <file.sb> <machine> <heuristic>
 *                                           schedule and print
 *   sb_tool slack <file.sb> <machine>       per-op EarlyRC/LateRC
 *   sb_tool dot <file.sb> <index>           emit Graphviz DOT
 *
 * Heuristics: SR, CP, G*, DHASY, Help, Balance.
 */

#include <iostream>
#include <string>

#include "bounds/superblock_bounds.hh"
#include "eval/experiment.hh"
#include "graph/dot.hh"
#include "support/table.hh"
#include "workload/generator.hh"
#include "workload/sb_io.hh"

using namespace balance;

namespace
{

int
usage()
{
    std::cerr
        << "usage:\n"
        << "  sb_tool gen <count> <file.sb> [seed]\n"
        << "  sb_tool suite <scale> <file.sb> [seed]\n"
        << "  sb_tool info <file.sb>\n"
        << "  sb_tool bounds <file.sb> <GP1|GP2|GP4|FS4|FS6|FS8>\n"
        << "  sb_tool sched <file.sb> <machine> "
           "<SR|CP|G*|DHASY|Help|Balance>\n"
        << "  sb_tool slack <file.sb> <machine>\n"
        << "  sb_tool dot <file.sb> <index>\n";
    return 1;
}

std::shared_ptr<const Scheduler>
schedulerByName(const std::string &name)
{
    for (auto &sched : HeuristicSet::paperSet(false).primaries) {
        if (sched->name() == name)
            return sched;
    }
    bsFatal("unknown heuristic '", name,
            "' (expected SR, CP, G*, DHASY, Help, or Balance)");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string cmd = argv[1];

    if (cmd == "gen") {
        if (argc < 4)
            return usage();
        int count = std::atoi(argv[2]);
        if (count <= 0)
            bsFatal("count must be positive");
        std::uint64_t seed = argc > 4
            ? std::uint64_t(std::atoll(argv[4]))
            : 12345;
        Rng rng(seed);
        GeneratorParams params;
        std::vector<Superblock> sbs;
        for (int i = 0; i < count; ++i) {
            Rng child = rng.fork();
            sbs.push_back(generateSuperblock(
                child, params, "gen.sb" + std::to_string(i)));
        }
        saveSuperblockFile(argv[3], sbs);
        std::cout << "wrote " << count << " superblocks to " << argv[3]
                  << "\n";
        return 0;
    }

    if (cmd == "suite") {
        if (argc < 4)
            return usage();
        double scale = std::atof(argv[2]);
        if (scale <= 0.0 || scale > 1.0)
            bsFatal("scale must be in (0, 1]");
        SuiteOptions suiteOpts;
        suiteOpts.scale = scale;
        if (argc > 4)
            suiteOpts.seed = std::uint64_t(std::atoll(argv[4]));
        auto suite = buildSuite(suiteOpts);
        std::vector<Superblock> all;
        for (auto &prog : suite) {
            for (auto &sb : prog.superblocks)
                all.push_back(std::move(sb));
        }
        saveSuperblockFile(argv[3], all);
        std::cout << "wrote " << all.size() << " suite superblocks to "
                  << argv[3] << "\n";
        return 0;
    }

    auto sbs = loadSuperblockFile(argv[2]);
    if (cmd == "info") {
        TextTable table;
        table.setHeader({"name", "ops", "edges", "branches", "freq"});
        for (const Superblock &sb : sbs) {
            table.addRow({sb.name(), std::to_string(sb.numOps()),
                          std::to_string(sb.numEdges()),
                          std::to_string(sb.numBranches()),
                          fmtDouble(sb.execFrequency(), 1)});
        }
        std::cout << table.render();
        return 0;
    }

    if (cmd == "bounds") {
        if (argc < 4)
            return usage();
        MachineModel machine = MachineModel::byName(argv[3]);
        TextTable table;
        table.setHeader({"name", "CP", "Hu", "RJ", "LC", "PW", "TW",
                         "tightest"});
        for (const Superblock &sb : sbs) {
            GraphContext ctx(sb);
            WctBounds b = computeWctBounds(ctx, machine);
            table.addRow({sb.name(), fmtDouble(b.cp, 3),
                          fmtDouble(b.hu, 3), fmtDouble(b.rj, 3),
                          fmtDouble(b.lc, 3), fmtDouble(b.pw, 3),
                          fmtDouble(b.tw, 3),
                          fmtDouble(b.tightest(), 3)});
        }
        std::cout << table.render();
        return 0;
    }

    if (cmd == "sched") {
        if (argc < 5)
            return usage();
        MachineModel machine = MachineModel::byName(argv[3]);
        auto sched = schedulerByName(argv[4]);
        for (const Superblock &sb : sbs) {
            GraphContext ctx(sb);
            Schedule s = sched->run(ctx, machine);
            s.validate(sb, machine);
            std::cout << s.render(sb, machine) << "\n";
        }
        return 0;
    }

    if (cmd == "slack") {
        if (argc < 4)
            return usage();
        MachineModel machine = MachineModel::byName(argv[3]);
        for (const Superblock &sb : sbs) {
            GraphContext ctx(sb);
            BoundsToolkit toolkit(ctx, machine);
            std::cout << "superblock " << sb.name() << " on "
                      << machine.name() << "\n";
            TextTable table;
            table.setHeader({"op", "class", "EarlyRC",
                             "LateRC(final)", "slack"});
            int lastExit = sb.numBranches() - 1;
            const auto &lateRC = toolkit.lateRC(lastExit);
            for (OpId v = 0; v < sb.numOps(); ++v) {
                int early = toolkit.earlyRC()[std::size_t(v)];
                int late = lateRC[std::size_t(v)];
                bool bounded = late != lateUnconstrained;
                table.addRow({std::to_string(v),
                              opClassName(sb.op(v).cls),
                              std::to_string(early),
                              bounded ? std::to_string(late) : "-",
                              bounded ? std::to_string(late - early)
                                      : "-"});
            }
            std::cout << table.render() << "\n";
        }
        return 0;
    }

    if (cmd == "dot") {
        if (argc < 4)
            return usage();
        std::size_t index = std::size_t(std::atoll(argv[3]));
        if (index >= sbs.size())
            bsFatal("index out of range: ", index, " of ", sbs.size());
        std::cout << toDot(sbs[index]);
        return 0;
    }
    return usage();
}
