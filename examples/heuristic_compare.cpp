/**
 * @file
 * Compares every heuristic across the six paper machine
 * configurations on a sampled synthetic SPECint95-like population,
 * printing per-config slowdowns against the tightest lower bound —
 * a miniature of the Table 3 bench, as an API usage example.
 *
 * Run: ./build/examples/heuristic_compare [fraction]
 */

#include <cstdlib>
#include <iostream>

#include "eval/experiment.hh"
#include "support/table.hh"

using namespace balance;

int
main(int argc, char **argv)
{
    double scale = 0.02;
    if (argc > 1)
        scale = std::atof(argv[1]);
    if (scale <= 0.0 || scale > 1.0) {
        std::cerr << "fraction must be in (0, 1]\n";
        return 1;
    }

    SuiteOptions suiteOpts;
    suiteOpts.scale = scale;
    auto suite = buildSuite(suiteOpts);
    std::cout << "population: " << suiteSize(suite)
              << " superblocks across " << suite.size()
              << " synthetic programs\n\n";

    HeuristicSet set = HeuristicSet::paperSet();
    auto names = set.names();

    TextTable table;
    std::vector<std::string> header = {"config", "trivial"};
    for (const auto &n : names)
        header.push_back(n);
    table.setHeader(header);

    for (const MachineModel &machine : MachineModel::paperConfigs()) {
        PopulationMetrics m = evaluatePopulation(suite, machine, set);
        std::vector<std::string> row = {
            machine.name(),
            fmtPercent(100.0 * m.trivialCycleFraction, 1)};
        for (std::size_t h = 0; h < names.size(); ++h)
            row.push_back(fmtPercent(100.0 * m.nontrivialSlowdown[h]));
        table.addRow(row);
    }
    std::cout << table.render();
    std::cout << "\n(nontrivial-superblock slowdown vs the tightest "
                 "lower bound; smaller is better)\n";
    return 0;
}
