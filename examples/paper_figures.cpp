/**
 * @file
 * Walks through the paper's motivating figures (Sections 2-3) on a
 * two-issue machine: prints each fixture, the bounds, and the
 * schedules the relevant heuristics produce, annotated with the
 * claims the figures illustrate.
 *
 * Run: ./build/examples/paper_figures
 */

#include <iostream>

#include "bounds/superblock_bounds.hh"
#include "core/balance_scheduler.hh"
#include "sched/heuristics.hh"
#include "sched/optimal.hh"
#include "support/table.hh"
#include "workload/paper_figures.hh"

using namespace balance;

namespace
{

void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n";
}

void
showSchedule(const std::string &label, const Schedule &s,
             const Superblock &sb, const MachineModel &m)
{
    std::cout << label << "\n" << s.render(sb, m);
}

} // namespace

int
main()
{
    MachineModel m = MachineModel::gp2();
    std::cout << "machine: " << m.describe() << "\n";

    {
        banner("Figure 1: CP vs SR on a superblock with slack");
        Superblock sb = paperFigure1(0.2);
        GraphContext ctx(sb);
        std::cout << "final exit: dependence bound 7, resource bound "
                     "ceil(16/2) = 8; the one-cycle gap lets the side "
                     "exit go early for free.\n";
        showSchedule("Critical Path (delays the side exit):",
                     CriticalPathScheduler().run(ctx, m), sb, m);
        showSchedule("Successive Retirement (optimal here):",
                     SuccessiveRetirementScheduler().run(ctx, m), sb, m);
        showSchedule("Balance:", BalanceScheduler().run(ctx, m), sb, m);
    }

    {
        banner("Figure 2: needs beat help counting (Observation 1)");
        Superblock sb = paperFigure2(0.4);
        GraphContext ctx(sb);
        std::cout << "branch 6 needs op 4 in cycle 0 (dependence); "
                     "branch 3 needs one of {0,1,2} per decision once "
                     "slots tighten.\n";
        showSchedule("DHASY:", DhasyScheduler().run(ctx, m), sb, m);
        showSchedule("Balance (optimal (2,3)):",
                     BalanceScheduler().run(ctx, m), sb, m);
    }

    {
        banner("Figure 3: resource-aware late times (Observation 2)");
        Superblock sb = paperFigure3(0.4);
        GraphContext ctx(sb);
        BoundsToolkit toolkit(ctx, m);
        OpId br9 = sb.branches()[1];
        std::cout << "EarlyRC[branch 9] = "
                  << toolkit.earlyRC()[std::size_t(br9)]
                  << "; dependence late of op 4 would be 2, LateRC "
                  << "tightens it to " << toolkit.lateRC(1)[4] << ".\n";
        showSchedule("Balance (op 4 issues by its LateRC window):",
                     BalanceScheduler().run(ctx, m), sb, m);
    }

    {
        banner("Figure 4: probability-dependent tradeoff "
               "(Observation 3)");
        TextTable table;
        table.setHeader({"side P", "pairwise point", "optimal wct",
                         "Balance wct"});
        for (double p : {0.2, 0.4, 0.6, 0.8}) {
            Superblock sb = paperFigure4(p);
            GraphContext ctx(sb);
            BoundsToolkit toolkit(ctx, m);
            const PairPoint &pt = toolkit.pairwise()->pair(0, 1);
            OptimalResult opt = optimalSchedule(ctx, m);
            double bal = BalanceScheduler().run(ctx, m).wct(sb);
            table.addRow({fmtDouble(p, 2),
                          "(" + std::to_string(pt.x) + ", " +
                              std::to_string(pt.y) + ")",
                          fmtDouble(opt.wct, 3), fmtDouble(bal, 3)});
        }
        std::cout << table.render();
        std::cout << "the pairwise bound flips from (3,4) to (2,5) at "
                     "P = 0.5, and Balance follows it.\n";
    }

    {
        banner("Figure 6: the ERC bound");
        Superblock sb = paperFigure6();
        GraphContext ctx(sb);
        WctBounds bounds = computeWctBounds(ctx, m);
        std::cout << "naive resource bound ceil(8/2) = 4; the "
                     "Hu/ERC bound finds 5 (ops {0,2,3,4,5} need five "
                     "slots by cycle 1).\n"
                  << "CP wct " << fmtDouble(bounds.cp, 3) << " vs Hu "
                  << fmtDouble(bounds.hu, 3) << "\n";
    }
    return 0;
}
